// Columnar FASTQ encoding for the chunk store (AGD-style): a batch of
// records is decomposed into independent per-field byte columns, each
// compressed with the codec that fits its distribution —
//
//   names : length-prefixed strings, concatenated (headers are already
//           near-incompressible without reference modelling)
//   len   : one uvarint per record (read lengths cluster tightly, so
//           these are almost always 1-2 bytes)
//   seq   : the 2-bit packed payloads from seq_codec, concatenated;
//           per-record extents are recovered from the len column via
//           packed_size(), so no framing bytes are spent here
//   qual  : a per-chunk-trained delta+Huffman QualityCodec — the
//           serialized table followed by one bit-packed stream of all
//           records (sequence N-escapes live in the quality bytes, so
//           qual is encoded AFTER compress_sequence rewrites it)
//
// This layer deliberately knows nothing about the chunk file format; it
// maps records <-> plain byte vectors, and src/store adapts those to
// chunk columns.  That keeps compress free of a store dependency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "formats/fastq.hpp"

namespace gpf {

/// Encoding tags stored in each chunk column's footer entry.
inline constexpr std::uint8_t kColumnEncodingRaw = 0;      // names, len
inline constexpr std::uint8_t kColumnEncodingPacked2 = 1;  // seq
inline constexpr std::uint8_t kColumnEncodingQualHuff = 2; // qual

/// One FASTQ batch decomposed into columns.
struct FastqColumns {
  std::uint64_t records = 0;
  std::vector<std::uint8_t> names;
  std::vector<std::uint8_t> lens;
  std::vector<std::uint8_t> seq;
  std::vector<std::uint8_t> qual;
};

/// The same columns as borrowed spans — decode reads straight out of a
/// chunk's mmap'd bytes without copying a column.
struct FastqColumnsView {
  std::uint64_t records = 0;
  std::span<const std::uint8_t> names;
  std::span<const std::uint8_t> lens;
  std::span<const std::uint8_t> seq;
  std::span<const std::uint8_t> qual;
};

/// Decomposes and compresses a batch.
FastqColumns encode_fastq_columns(std::span<const FastqRecord> records);

/// Reassembles the records.  Throws std::out_of_range when any column is
/// shorter than its siblings claim (callers translate to typed errors).
std::vector<FastqRecord> decode_fastq_columns(const FastqColumnsView& columns);
std::vector<FastqRecord> decode_fastq_columns(const FastqColumns& columns);

}  // namespace gpf
