# Empty dependencies file for gpf_tool.
# This may be replaced when dependencies are built.
