file(REMOVE_RECURSE
  "CMakeFiles/gpf_tool.dir/gpf_tool.cpp.o"
  "CMakeFiles/gpf_tool.dir/gpf_tool.cpp.o.d"
  "gpf_tool"
  "gpf_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
