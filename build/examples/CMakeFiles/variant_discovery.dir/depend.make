# Empty dependencies file for variant_discovery.
# This may be replaced when dependencies are built.
