file(REMOVE_RECURSE
  "CMakeFiles/variant_discovery.dir/variant_discovery.cpp.o"
  "CMakeFiles/variant_discovery.dir/variant_discovery.cpp.o.d"
  "variant_discovery"
  "variant_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
