# Empty compiler generated dependencies file for cohort_study.
# This may be replaced when dependencies are built.
