file(REMOVE_RECURSE
  "CMakeFiles/cohort_study.dir/cohort_study.cpp.o"
  "CMakeFiles/cohort_study.dir/cohort_study.cpp.o.d"
  "cohort_study"
  "cohort_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohort_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
