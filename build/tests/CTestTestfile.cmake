# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_simcluster[1]_include.cmake")
include("/root/repo/build/tests/test_simdata[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_cleaner[1]_include.cmake")
include("/root/repo/build/tests/test_caller[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_io_formats[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
