# Empty compiler generated dependencies file for test_io_formats.
# This may be replaced when dependencies are built.
