file(REMOVE_RECURSE
  "CMakeFiles/test_io_formats.dir/test_io_formats.cpp.o"
  "CMakeFiles/test_io_formats.dir/test_io_formats.cpp.o.d"
  "test_io_formats"
  "test_io_formats.pdb"
  "test_io_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
