file(REMOVE_RECURSE
  "CMakeFiles/test_caller.dir/test_caller.cpp.o"
  "CMakeFiles/test_caller.dir/test_caller.cpp.o.d"
  "test_caller"
  "test_caller.pdb"
  "test_caller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
