# Empty compiler generated dependencies file for test_caller.
# This may be replaced when dependencies are built.
