file(REMOVE_RECURSE
  "CMakeFiles/test_simcluster.dir/test_simcluster.cpp.o"
  "CMakeFiles/test_simcluster.dir/test_simcluster.cpp.o.d"
  "test_simcluster"
  "test_simcluster.pdb"
  "test_simcluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
