# Empty compiler generated dependencies file for test_cleaner.
# This may be replaced when dependencies are built.
