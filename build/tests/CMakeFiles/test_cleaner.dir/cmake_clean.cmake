file(REMOVE_RECURSE
  "CMakeFiles/test_cleaner.dir/test_cleaner.cpp.o"
  "CMakeFiles/test_cleaner.dir/test_cleaner.cpp.o.d"
  "test_cleaner"
  "test_cleaner.pdb"
  "test_cleaner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cleaner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
