# Empty dependencies file for test_simdata.
# This may be replaced when dependencies are built.
