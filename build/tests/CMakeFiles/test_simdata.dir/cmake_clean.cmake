file(REMOVE_RECURSE
  "CMakeFiles/test_simdata.dir/test_simdata.cpp.o"
  "CMakeFiles/test_simdata.dir/test_simdata.cpp.o.d"
  "test_simdata"
  "test_simdata.pdb"
  "test_simdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
