file(REMOVE_RECURSE
  "CMakeFiles/test_formats.dir/test_formats.cpp.o"
  "CMakeFiles/test_formats.dir/test_formats.cpp.o.d"
  "test_formats"
  "test_formats.pdb"
  "test_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
