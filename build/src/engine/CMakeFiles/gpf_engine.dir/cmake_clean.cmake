file(REMOVE_RECURSE
  "CMakeFiles/gpf_engine.dir/metrics.cpp.o"
  "CMakeFiles/gpf_engine.dir/metrics.cpp.o.d"
  "libgpf_engine.a"
  "libgpf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
