file(REMOVE_RECURSE
  "libgpf_engine.a"
)
