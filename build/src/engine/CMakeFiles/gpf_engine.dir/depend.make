# Empty dependencies file for gpf_engine.
# This may be replaced when dependencies are built.
