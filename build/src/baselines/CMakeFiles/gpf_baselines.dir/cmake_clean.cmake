file(REMOVE_RECURSE
  "CMakeFiles/gpf_baselines.dir/adamlike.cpp.o"
  "CMakeFiles/gpf_baselines.dir/adamlike.cpp.o.d"
  "CMakeFiles/gpf_baselines.dir/churchill.cpp.o"
  "CMakeFiles/gpf_baselines.dir/churchill.cpp.o.d"
  "CMakeFiles/gpf_baselines.dir/personalike.cpp.o"
  "CMakeFiles/gpf_baselines.dir/personalike.cpp.o.d"
  "libgpf_baselines.a"
  "libgpf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
