file(REMOVE_RECURSE
  "libgpf_baselines.a"
)
