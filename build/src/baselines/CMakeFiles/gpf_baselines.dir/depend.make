# Empty dependencies file for gpf_baselines.
# This may be replaced when dependencies are built.
