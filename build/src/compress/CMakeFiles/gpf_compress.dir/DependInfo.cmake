
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/gbam.cpp" "src/compress/CMakeFiles/gpf_compress.dir/gbam.cpp.o" "gcc" "src/compress/CMakeFiles/gpf_compress.dir/gbam.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/gpf_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/gpf_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/qual_codec.cpp" "src/compress/CMakeFiles/gpf_compress.dir/qual_codec.cpp.o" "gcc" "src/compress/CMakeFiles/gpf_compress.dir/qual_codec.cpp.o.d"
  "/root/repo/src/compress/record_codec.cpp" "src/compress/CMakeFiles/gpf_compress.dir/record_codec.cpp.o" "gcc" "src/compress/CMakeFiles/gpf_compress.dir/record_codec.cpp.o.d"
  "/root/repo/src/compress/seq_codec.cpp" "src/compress/CMakeFiles/gpf_compress.dir/seq_codec.cpp.o" "gcc" "src/compress/CMakeFiles/gpf_compress.dir/seq_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
