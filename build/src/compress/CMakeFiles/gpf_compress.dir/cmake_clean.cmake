file(REMOVE_RECURSE
  "CMakeFiles/gpf_compress.dir/gbam.cpp.o"
  "CMakeFiles/gpf_compress.dir/gbam.cpp.o.d"
  "CMakeFiles/gpf_compress.dir/huffman.cpp.o"
  "CMakeFiles/gpf_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/gpf_compress.dir/qual_codec.cpp.o"
  "CMakeFiles/gpf_compress.dir/qual_codec.cpp.o.d"
  "CMakeFiles/gpf_compress.dir/record_codec.cpp.o"
  "CMakeFiles/gpf_compress.dir/record_codec.cpp.o.d"
  "CMakeFiles/gpf_compress.dir/seq_codec.cpp.o"
  "CMakeFiles/gpf_compress.dir/seq_codec.cpp.o.d"
  "libgpf_compress.a"
  "libgpf_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
