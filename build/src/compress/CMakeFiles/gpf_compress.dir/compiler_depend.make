# Empty compiler generated dependencies file for gpf_compress.
# This may be replaced when dependencies are built.
