file(REMOVE_RECURSE
  "libgpf_compress.a"
)
