# Empty dependencies file for gpf_simdata.
# This may be replaced when dependencies are built.
