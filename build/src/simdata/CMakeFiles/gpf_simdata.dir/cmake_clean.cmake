file(REMOVE_RECURSE
  "CMakeFiles/gpf_simdata.dir/quality_model.cpp.o"
  "CMakeFiles/gpf_simdata.dir/quality_model.cpp.o.d"
  "CMakeFiles/gpf_simdata.dir/read_sim.cpp.o"
  "CMakeFiles/gpf_simdata.dir/read_sim.cpp.o.d"
  "CMakeFiles/gpf_simdata.dir/reference_gen.cpp.o"
  "CMakeFiles/gpf_simdata.dir/reference_gen.cpp.o.d"
  "CMakeFiles/gpf_simdata.dir/variant_gen.cpp.o"
  "CMakeFiles/gpf_simdata.dir/variant_gen.cpp.o.d"
  "libgpf_simdata.a"
  "libgpf_simdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_simdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
