
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdata/quality_model.cpp" "src/simdata/CMakeFiles/gpf_simdata.dir/quality_model.cpp.o" "gcc" "src/simdata/CMakeFiles/gpf_simdata.dir/quality_model.cpp.o.d"
  "/root/repo/src/simdata/read_sim.cpp" "src/simdata/CMakeFiles/gpf_simdata.dir/read_sim.cpp.o" "gcc" "src/simdata/CMakeFiles/gpf_simdata.dir/read_sim.cpp.o.d"
  "/root/repo/src/simdata/reference_gen.cpp" "src/simdata/CMakeFiles/gpf_simdata.dir/reference_gen.cpp.o" "gcc" "src/simdata/CMakeFiles/gpf_simdata.dir/reference_gen.cpp.o.d"
  "/root/repo/src/simdata/variant_gen.cpp" "src/simdata/CMakeFiles/gpf_simdata.dir/variant_gen.cpp.o" "gcc" "src/simdata/CMakeFiles/gpf_simdata.dir/variant_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
