file(REMOVE_RECURSE
  "libgpf_simdata.a"
)
