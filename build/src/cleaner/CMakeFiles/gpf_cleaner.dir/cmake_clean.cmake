file(REMOVE_RECURSE
  "CMakeFiles/gpf_cleaner.dir/bqsr.cpp.o"
  "CMakeFiles/gpf_cleaner.dir/bqsr.cpp.o.d"
  "CMakeFiles/gpf_cleaner.dir/indel_realign.cpp.o"
  "CMakeFiles/gpf_cleaner.dir/indel_realign.cpp.o.d"
  "CMakeFiles/gpf_cleaner.dir/markdup.cpp.o"
  "CMakeFiles/gpf_cleaner.dir/markdup.cpp.o.d"
  "CMakeFiles/gpf_cleaner.dir/sorter.cpp.o"
  "CMakeFiles/gpf_cleaner.dir/sorter.cpp.o.d"
  "libgpf_cleaner.a"
  "libgpf_cleaner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_cleaner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
