
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cleaner/bqsr.cpp" "src/cleaner/CMakeFiles/gpf_cleaner.dir/bqsr.cpp.o" "gcc" "src/cleaner/CMakeFiles/gpf_cleaner.dir/bqsr.cpp.o.d"
  "/root/repo/src/cleaner/indel_realign.cpp" "src/cleaner/CMakeFiles/gpf_cleaner.dir/indel_realign.cpp.o" "gcc" "src/cleaner/CMakeFiles/gpf_cleaner.dir/indel_realign.cpp.o.d"
  "/root/repo/src/cleaner/markdup.cpp" "src/cleaner/CMakeFiles/gpf_cleaner.dir/markdup.cpp.o" "gcc" "src/cleaner/CMakeFiles/gpf_cleaner.dir/markdup.cpp.o.d"
  "/root/repo/src/cleaner/sorter.cpp" "src/cleaner/CMakeFiles/gpf_cleaner.dir/sorter.cpp.o" "gcc" "src/cleaner/CMakeFiles/gpf_cleaner.dir/sorter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gpf_align.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
