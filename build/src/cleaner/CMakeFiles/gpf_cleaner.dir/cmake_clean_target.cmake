file(REMOVE_RECURSE
  "libgpf_cleaner.a"
)
