# Empty compiler generated dependencies file for gpf_cleaner.
# This may be replaced when dependencies are built.
