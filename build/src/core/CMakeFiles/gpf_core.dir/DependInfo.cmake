
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cohort.cpp" "src/core/CMakeFiles/gpf_core.dir/cohort.cpp.o" "gcc" "src/core/CMakeFiles/gpf_core.dir/cohort.cpp.o.d"
  "/root/repo/src/core/file_io.cpp" "src/core/CMakeFiles/gpf_core.dir/file_io.cpp.o" "gcc" "src/core/CMakeFiles/gpf_core.dir/file_io.cpp.o.d"
  "/root/repo/src/core/partition_info.cpp" "src/core/CMakeFiles/gpf_core.dir/partition_info.cpp.o" "gcc" "src/core/CMakeFiles/gpf_core.dir/partition_info.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/gpf_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/gpf_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/processes.cpp" "src/core/CMakeFiles/gpf_core.dir/processes.cpp.o" "gcc" "src/core/CMakeFiles/gpf_core.dir/processes.cpp.o.d"
  "/root/repo/src/core/resource.cpp" "src/core/CMakeFiles/gpf_core.dir/resource.cpp.o" "gcc" "src/core/CMakeFiles/gpf_core.dir/resource.cpp.o.d"
  "/root/repo/src/core/wgs_pipeline.cpp" "src/core/CMakeFiles/gpf_core.dir/wgs_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/gpf_core.dir/wgs_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gpf_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gpf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gpf_align.dir/DependInfo.cmake"
  "/root/repo/build/src/cleaner/CMakeFiles/gpf_cleaner.dir/DependInfo.cmake"
  "/root/repo/build/src/caller/CMakeFiles/gpf_caller.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
