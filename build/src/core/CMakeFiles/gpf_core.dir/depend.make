# Empty dependencies file for gpf_core.
# This may be replaced when dependencies are built.
