file(REMOVE_RECURSE
  "libgpf_core.a"
)
