file(REMOVE_RECURSE
  "CMakeFiles/gpf_core.dir/cohort.cpp.o"
  "CMakeFiles/gpf_core.dir/cohort.cpp.o.d"
  "CMakeFiles/gpf_core.dir/file_io.cpp.o"
  "CMakeFiles/gpf_core.dir/file_io.cpp.o.d"
  "CMakeFiles/gpf_core.dir/partition_info.cpp.o"
  "CMakeFiles/gpf_core.dir/partition_info.cpp.o.d"
  "CMakeFiles/gpf_core.dir/pipeline.cpp.o"
  "CMakeFiles/gpf_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/gpf_core.dir/processes.cpp.o"
  "CMakeFiles/gpf_core.dir/processes.cpp.o.d"
  "CMakeFiles/gpf_core.dir/resource.cpp.o"
  "CMakeFiles/gpf_core.dir/resource.cpp.o.d"
  "CMakeFiles/gpf_core.dir/wgs_pipeline.cpp.o"
  "CMakeFiles/gpf_core.dir/wgs_pipeline.cpp.o.d"
  "libgpf_core.a"
  "libgpf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
