file(REMOVE_RECURSE
  "libgpf_common.a"
)
