file(REMOVE_RECURSE
  "CMakeFiles/gpf_common.dir/histogram.cpp.o"
  "CMakeFiles/gpf_common.dir/histogram.cpp.o.d"
  "CMakeFiles/gpf_common.dir/logging.cpp.o"
  "CMakeFiles/gpf_common.dir/logging.cpp.o.d"
  "CMakeFiles/gpf_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gpf_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/gpf_common.dir/timer.cpp.o"
  "CMakeFiles/gpf_common.dir/timer.cpp.o.d"
  "libgpf_common.a"
  "libgpf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
