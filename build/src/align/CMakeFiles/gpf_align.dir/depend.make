# Empty dependencies file for gpf_align.
# This may be replaced when dependencies are built.
