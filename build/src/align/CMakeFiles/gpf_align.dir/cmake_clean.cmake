file(REMOVE_RECURSE
  "CMakeFiles/gpf_align.dir/bwamem.cpp.o"
  "CMakeFiles/gpf_align.dir/bwamem.cpp.o.d"
  "CMakeFiles/gpf_align.dir/fm_index.cpp.o"
  "CMakeFiles/gpf_align.dir/fm_index.cpp.o.d"
  "CMakeFiles/gpf_align.dir/hash_aligner.cpp.o"
  "CMakeFiles/gpf_align.dir/hash_aligner.cpp.o.d"
  "CMakeFiles/gpf_align.dir/smith_waterman.cpp.o"
  "CMakeFiles/gpf_align.dir/smith_waterman.cpp.o.d"
  "CMakeFiles/gpf_align.dir/suffix_array.cpp.o"
  "CMakeFiles/gpf_align.dir/suffix_array.cpp.o.d"
  "libgpf_align.a"
  "libgpf_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
