
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/bwamem.cpp" "src/align/CMakeFiles/gpf_align.dir/bwamem.cpp.o" "gcc" "src/align/CMakeFiles/gpf_align.dir/bwamem.cpp.o.d"
  "/root/repo/src/align/fm_index.cpp" "src/align/CMakeFiles/gpf_align.dir/fm_index.cpp.o" "gcc" "src/align/CMakeFiles/gpf_align.dir/fm_index.cpp.o.d"
  "/root/repo/src/align/hash_aligner.cpp" "src/align/CMakeFiles/gpf_align.dir/hash_aligner.cpp.o" "gcc" "src/align/CMakeFiles/gpf_align.dir/hash_aligner.cpp.o.d"
  "/root/repo/src/align/smith_waterman.cpp" "src/align/CMakeFiles/gpf_align.dir/smith_waterman.cpp.o" "gcc" "src/align/CMakeFiles/gpf_align.dir/smith_waterman.cpp.o.d"
  "/root/repo/src/align/suffix_array.cpp" "src/align/CMakeFiles/gpf_align.dir/suffix_array.cpp.o" "gcc" "src/align/CMakeFiles/gpf_align.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
