file(REMOVE_RECURSE
  "libgpf_align.a"
)
