file(REMOVE_RECURSE
  "CMakeFiles/gpf_simcluster.dir/cluster.cpp.o"
  "CMakeFiles/gpf_simcluster.dir/cluster.cpp.o.d"
  "CMakeFiles/gpf_simcluster.dir/sharedfs.cpp.o"
  "CMakeFiles/gpf_simcluster.dir/sharedfs.cpp.o.d"
  "CMakeFiles/gpf_simcluster.dir/trace.cpp.o"
  "CMakeFiles/gpf_simcluster.dir/trace.cpp.o.d"
  "libgpf_simcluster.a"
  "libgpf_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
