
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcluster/cluster.cpp" "src/simcluster/CMakeFiles/gpf_simcluster.dir/cluster.cpp.o" "gcc" "src/simcluster/CMakeFiles/gpf_simcluster.dir/cluster.cpp.o.d"
  "/root/repo/src/simcluster/sharedfs.cpp" "src/simcluster/CMakeFiles/gpf_simcluster.dir/sharedfs.cpp.o" "gcc" "src/simcluster/CMakeFiles/gpf_simcluster.dir/sharedfs.cpp.o.d"
  "/root/repo/src/simcluster/trace.cpp" "src/simcluster/CMakeFiles/gpf_simcluster.dir/trace.cpp.o" "gcc" "src/simcluster/CMakeFiles/gpf_simcluster.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gpf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gpf_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
