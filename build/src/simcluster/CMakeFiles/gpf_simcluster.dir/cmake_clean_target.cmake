file(REMOVE_RECURSE
  "libgpf_simcluster.a"
)
