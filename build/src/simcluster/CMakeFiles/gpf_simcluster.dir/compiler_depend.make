# Empty compiler generated dependencies file for gpf_simcluster.
# This may be replaced when dependencies are built.
