
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/caller/active_region.cpp" "src/caller/CMakeFiles/gpf_caller.dir/active_region.cpp.o" "gcc" "src/caller/CMakeFiles/gpf_caller.dir/active_region.cpp.o.d"
  "/root/repo/src/caller/assembler.cpp" "src/caller/CMakeFiles/gpf_caller.dir/assembler.cpp.o" "gcc" "src/caller/CMakeFiles/gpf_caller.dir/assembler.cpp.o.d"
  "/root/repo/src/caller/genotyper.cpp" "src/caller/CMakeFiles/gpf_caller.dir/genotyper.cpp.o" "gcc" "src/caller/CMakeFiles/gpf_caller.dir/genotyper.cpp.o.d"
  "/root/repo/src/caller/gvcf.cpp" "src/caller/CMakeFiles/gpf_caller.dir/gvcf.cpp.o" "gcc" "src/caller/CMakeFiles/gpf_caller.dir/gvcf.cpp.o.d"
  "/root/repo/src/caller/haplotype_caller.cpp" "src/caller/CMakeFiles/gpf_caller.dir/haplotype_caller.cpp.o" "gcc" "src/caller/CMakeFiles/gpf_caller.dir/haplotype_caller.cpp.o.d"
  "/root/repo/src/caller/pairhmm.cpp" "src/caller/CMakeFiles/gpf_caller.dir/pairhmm.cpp.o" "gcc" "src/caller/CMakeFiles/gpf_caller.dir/pairhmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gpf_align.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
