file(REMOVE_RECURSE
  "libgpf_caller.a"
)
