file(REMOVE_RECURSE
  "CMakeFiles/gpf_caller.dir/active_region.cpp.o"
  "CMakeFiles/gpf_caller.dir/active_region.cpp.o.d"
  "CMakeFiles/gpf_caller.dir/assembler.cpp.o"
  "CMakeFiles/gpf_caller.dir/assembler.cpp.o.d"
  "CMakeFiles/gpf_caller.dir/genotyper.cpp.o"
  "CMakeFiles/gpf_caller.dir/genotyper.cpp.o.d"
  "CMakeFiles/gpf_caller.dir/gvcf.cpp.o"
  "CMakeFiles/gpf_caller.dir/gvcf.cpp.o.d"
  "CMakeFiles/gpf_caller.dir/haplotype_caller.cpp.o"
  "CMakeFiles/gpf_caller.dir/haplotype_caller.cpp.o.d"
  "CMakeFiles/gpf_caller.dir/pairhmm.cpp.o"
  "CMakeFiles/gpf_caller.dir/pairhmm.cpp.o.d"
  "libgpf_caller.a"
  "libgpf_caller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_caller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
