# Empty compiler generated dependencies file for gpf_caller.
# This may be replaced when dependencies are built.
