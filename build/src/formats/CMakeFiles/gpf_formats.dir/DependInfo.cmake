
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/bed.cpp" "src/formats/CMakeFiles/gpf_formats.dir/bed.cpp.o" "gcc" "src/formats/CMakeFiles/gpf_formats.dir/bed.cpp.o.d"
  "/root/repo/src/formats/cigar.cpp" "src/formats/CMakeFiles/gpf_formats.dir/cigar.cpp.o" "gcc" "src/formats/CMakeFiles/gpf_formats.dir/cigar.cpp.o.d"
  "/root/repo/src/formats/fasta.cpp" "src/formats/CMakeFiles/gpf_formats.dir/fasta.cpp.o" "gcc" "src/formats/CMakeFiles/gpf_formats.dir/fasta.cpp.o.d"
  "/root/repo/src/formats/fastq.cpp" "src/formats/CMakeFiles/gpf_formats.dir/fastq.cpp.o" "gcc" "src/formats/CMakeFiles/gpf_formats.dir/fastq.cpp.o.d"
  "/root/repo/src/formats/sam.cpp" "src/formats/CMakeFiles/gpf_formats.dir/sam.cpp.o" "gcc" "src/formats/CMakeFiles/gpf_formats.dir/sam.cpp.o.d"
  "/root/repo/src/formats/vcf.cpp" "src/formats/CMakeFiles/gpf_formats.dir/vcf.cpp.o" "gcc" "src/formats/CMakeFiles/gpf_formats.dir/vcf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
