file(REMOVE_RECURSE
  "CMakeFiles/gpf_formats.dir/bed.cpp.o"
  "CMakeFiles/gpf_formats.dir/bed.cpp.o.d"
  "CMakeFiles/gpf_formats.dir/cigar.cpp.o"
  "CMakeFiles/gpf_formats.dir/cigar.cpp.o.d"
  "CMakeFiles/gpf_formats.dir/fasta.cpp.o"
  "CMakeFiles/gpf_formats.dir/fasta.cpp.o.d"
  "CMakeFiles/gpf_formats.dir/fastq.cpp.o"
  "CMakeFiles/gpf_formats.dir/fastq.cpp.o.d"
  "CMakeFiles/gpf_formats.dir/sam.cpp.o"
  "CMakeFiles/gpf_formats.dir/sam.cpp.o.d"
  "CMakeFiles/gpf_formats.dir/vcf.cpp.o"
  "CMakeFiles/gpf_formats.dir/vcf.cpp.o.d"
  "libgpf_formats.a"
  "libgpf_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
