# Empty compiler generated dependencies file for gpf_formats.
# This may be replaced when dependencies are built.
