file(REMOVE_RECURSE
  "libgpf_formats.a"
)
