# Empty compiler generated dependencies file for gpf_bench_common.
# This may be replaced when dependencies are built.
