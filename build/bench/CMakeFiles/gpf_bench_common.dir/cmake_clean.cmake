file(REMOVE_RECURSE
  "../lib/libgpf_bench_common.a"
  "../lib/libgpf_bench_common.pdb"
  "CMakeFiles/gpf_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/gpf_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
