file(REMOVE_RECURSE
  "../lib/libgpf_bench_common.a"
)
