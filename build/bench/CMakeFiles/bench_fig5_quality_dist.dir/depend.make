# Empty dependencies file for bench_fig5_quality_dist.
# This may be replaced when dependencies are built.
