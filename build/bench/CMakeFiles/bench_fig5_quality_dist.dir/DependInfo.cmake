
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_quality_dist.cpp" "bench/CMakeFiles/bench_fig5_quality_dist.dir/bench_fig5_quality_dist.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_quality_dist.dir/bench_fig5_quality_dist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gpf_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/caller/CMakeFiles/gpf_caller.dir/DependInfo.cmake"
  "/root/repo/build/src/cleaner/CMakeFiles/gpf_cleaner.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gpf_align.dir/DependInfo.cmake"
  "/root/repo/build/src/simdata/CMakeFiles/gpf_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/gpf_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gpf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gpf_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gpf_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
