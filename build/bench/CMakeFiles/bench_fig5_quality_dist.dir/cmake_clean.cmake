file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_quality_dist.dir/bench_fig5_quality_dist.cpp.o"
  "CMakeFiles/bench_fig5_quality_dist.dir/bench_fig5_quality_dist.cpp.o.d"
  "bench_fig5_quality_dist"
  "bench_fig5_quality_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_quality_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
