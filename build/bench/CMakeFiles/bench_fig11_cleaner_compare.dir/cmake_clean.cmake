file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cleaner_compare.dir/bench_fig11_cleaner_compare.cpp.o"
  "CMakeFiles/bench_fig11_cleaner_compare.dir/bench_fig11_cleaner_compare.cpp.o.d"
  "bench_fig11_cleaner_compare"
  "bench_fig11_cleaner_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cleaner_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
