# Empty dependencies file for bench_fig11_cleaner_compare.
# This may be replaced when dependencies are built.
