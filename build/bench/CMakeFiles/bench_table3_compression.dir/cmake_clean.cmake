file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_compression.dir/bench_table3_compression.cpp.o"
  "CMakeFiles/bench_table3_compression.dir/bench_table3_compression.cpp.o.d"
  "bench_table3_compression"
  "bench_table3_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
