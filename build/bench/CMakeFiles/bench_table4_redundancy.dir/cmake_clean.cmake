file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_redundancy.dir/bench_table4_redundancy.cpp.o"
  "CMakeFiles/bench_table4_redundancy.dir/bench_table4_redundancy.cpp.o.d"
  "bench_table4_redundancy"
  "bench_table4_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
