file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_io_fraction.dir/bench_table1_io_fraction.cpp.o"
  "CMakeFiles/bench_table1_io_fraction.dir/bench_table1_io_fraction.cpp.o.d"
  "bench_table1_io_fraction"
  "bench_table1_io_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_io_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
