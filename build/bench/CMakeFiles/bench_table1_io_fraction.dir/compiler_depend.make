# Empty compiler generated dependencies file for bench_table1_io_fraction.
# This may be replaced when dependencies are built.
