# Empty dependencies file for bench_fig11d_aligner_throughput.
# This may be replaced when dependencies are built.
