file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gpf.dir/bench_ablation_gpf.cpp.o"
  "CMakeFiles/bench_ablation_gpf.dir/bench_ablation_gpf.cpp.o.d"
  "bench_ablation_gpf"
  "bench_ablation_gpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
