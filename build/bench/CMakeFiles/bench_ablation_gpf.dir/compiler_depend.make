# Empty compiler generated dependencies file for bench_ablation_gpf.
# This may be replaced when dependencies are built.
