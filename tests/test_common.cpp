// Unit tests for src/common: thread pool, RNG, byte serialization,
// histogram, formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>

#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace gpf {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: a parallel_for issued from inside a pool worker used to
  // enqueue its chunks behind the very workers blocked waiting on them.
  // With one worker the old code deadlocked instantly; the fix runs
  // nested loops inline on the calling worker.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner]++;
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForMultiWorker) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(16, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 256);
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndStaysUsable) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 37) throw std::runtime_error("boom at 37");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // The pool survives a throwing loop.
  std::atomic<int> after{0};
  pool.parallel_for(16, [&](std::size_t) { after++; });
  EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPool, ParallelForDrainsEveryChunkBeforePropagating) {
  // Regression: parallel_for used to rethrow as soon as the first failed
  // future was reaped, returning while queued chunks still referenced the
  // caller's `fn` — whose lifetime ends with the unwinding stack frame (a
  // use-after-free once a worker scheduled them).  The fix drains every
  // chunk first, so by the time the exception escapes, every index either
  // ran or sat in the throwing chunk.
  ThreadPool pool(2);
  const std::size_t n = 64;
  // Chunk layout mirrors the implementation: min(n, size()*4) blocks.
  const std::size_t blocks = std::min<std::size_t>(n, 2 * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::atomic<std::size_t> completed{0};
  try {
    pool.parallel_for(n, [&](std::size_t i) {
      // Throw at the LAST index of the first chunk so every other index
      // must have completed by the time the failure propagates.
      if (i == chunk - 1) throw std::runtime_error("chunk 0 fails");
      completed++;
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(completed.load(), n - 1);
}

TEST(ThreadPool, ParallelForFirstSubmittedExceptionWins) {
  ThreadPool pool(2);
  const std::size_t n = 64;
  try {
    pool.parallel_for(n, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first chunk");
      if (i == n - 1) throw std::logic_error("last chunk");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    // Futures are reaped in submission order, so the earliest-submitted
    // chunk's exception is the one that propagates.
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
  }
}

TEST(ThreadPool, NestedParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t) {
                                   pool.parallel_for(4, [&](std::size_t j) {
                                     if (j == 3) {
                                       throw std::invalid_argument("inner");
                                     }
                                   });
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, OnWorkerThreadFalseOutside) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  auto f = pool.submit([&] { return pool.on_worker_thread(); });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  futs.reserve(256);
  for (int i = 0; i < 256; ++i) {
    futs.push_back(pool.submit([&sum] { sum++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 256);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasUnitVarianceRoughly) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1LL << 40);
  w.f32(1.5f);
  w.f64(-2.25);
  ByteReader r(std::span(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1LL << 40);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, VarintRoundTripProperty) {
  Rng rng(17);
  ByteWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    // Mix small and large magnitudes.
    const int bits = static_cast<int>(rng.below(64));
    const std::uint64_t v = rng.next() >> bits;
    values.push_back(v);
    w.uvarint(v);
  }
  ByteReader r(std::span(w.bytes().data(), w.bytes().size()));
  for (const auto v : values) EXPECT_EQ(r.uvarint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, SignedVarintRoundTrip) {
  ByteWriter w;
  const std::int64_t cases[] = {0, -1, 1, 63, -64, 1000000, -1000000,
                                INT64_MAX, INT64_MIN + 1};
  for (const auto v : cases) w.svarint(v);
  ByteReader r(std::span(w.bytes().data(), w.bytes().size()));
  for (const auto v : cases) EXPECT_EQ(r.svarint(), v);
}

TEST(Bytes, SmallVarintsAreOneByte) {
  ByteWriter w;
  w.uvarint(127);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.str(std::string(1000, 'x'));
  ByteReader r(std::span(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Bytes, TruncatedInputThrows) {
  ByteWriter w;
  w.u64(1);
  ByteReader r(std::span(w.bytes().data(), 3));
  EXPECT_THROW(r.u64(), std::out_of_range);
}

TEST(Histogram, BasicCountsAndFractions) {
  Histogram h;
  h.add(5, 3);
  h.add(7);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(5), 3u);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.75);
  EXPECT_EQ(h.min_key(), 5);
  EXPECT_EQ(h.max_key(), 7);
}

TEST(Histogram, MeanAndPercentile) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(1.0), 100);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(2, 1);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(2), 1u);
}

TEST(Histogram, EmptyThrowsOnStats) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW(h.min_key(), std::logic_error);
  EXPECT_THROW(h.percentile(0.5), std::logic_error);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Format, Durations) {
  EXPECT_EQ(format_duration(0.5), "500ms");
  EXPECT_EQ(format_duration(12.0), "12.00s");
  EXPECT_EQ(format_duration(24 * 60.0), "24m00.0s");
}

TEST(Format, DurationsRollMinutesIntoHours) {
  // Regression: 3 hours used to print as "180m00.0s".
  EXPECT_EQ(format_duration(3 * 3600.0), "3h00m00.0s");
  EXPECT_EQ(format_duration(3661.5), "1h01m01.5s");
  EXPECT_EQ(format_duration(26 * 3600.0 + 5 * 60.0 + 9.0), "26h05m09.0s");
  EXPECT_EQ(format_duration(59 * 60.0 + 59.9), "59m59.9s");
}

TEST(Format, DurationsHandleNegativeAndNonFinite) {
  // Regression: negatives misformatted ("-0ms", garbage minute counts)
  // and NaN printed "nanms".
  EXPECT_EQ(format_duration(-12.0), "-12.00s");
  EXPECT_EQ(format_duration(-3 * 3600.0), "-3h00m00.0s");
  EXPECT_EQ(format_duration(std::nan("")), "nan");
  EXPECT_EQ(format_duration(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_duration(-std::numeric_limits<double>::infinity()),
            "-inf");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(500), "500B");
  EXPECT_EQ(format_bytes(20'000'000'000ULL), "20.0GB");
}

}  // namespace
}  // namespace gpf
