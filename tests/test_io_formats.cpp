// Tests for the file-backed endpoints (core/file_io) and the GBAM binary
// alignment container.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>

#include "engine/dataset.hpp"

#include "common/fsio.hpp"
#include "compress/gbam.hpp"
#include "core/file_io.hpp"
#include "common/rng.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"

namespace gpf {
namespace {

/// Temp-directory fixture; files are removed on teardown.
class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gpf_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileIoTest, ReadWriteRoundTrip) {
  core::write_file(path("x.txt"), "hello\nworld");
  EXPECT_EQ(core::read_file(path("x.txt")), "hello\nworld");
}

TEST_F(FileIoTest, MissingFileThrowsWithPath) {
  try {
    core::read_file(path("nope.txt"));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nope.txt"), std::string::npos);
  }
}

TEST_F(FileIoTest, UnwritablePathThrows) {
  EXPECT_THROW(core::write_file(path("no_dir/x.txt"), "x"),
               std::runtime_error);
}

TEST_F(FileIoTest, WriteFileSurvivesCrashMidWrite) {
  // Regression: write_file used to truncate the destination in place, so
  // a crash mid-write left a torn prefix.  It now writes through
  // fs::atomic_write_file — under an injected failure the old bytes stay
  // intact and no temp file is left behind.
  core::write_file(path("data.txt"), "the old, complete contents");
  fs::testing::set_write_failure_hook(
      [] { throw std::runtime_error("injected crash mid-write"); });
  EXPECT_THROW(core::write_file(path("data.txt"), "new contents"),
               std::runtime_error);
  fs::testing::set_write_failure_hook(nullptr);

  EXPECT_EQ(core::read_file(path("data.txt")), "the old, complete contents");
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(std::string(e.path().filename()).find(".tmp"),
              std::string::npos)
        << "leftover temp file: " << e.path();
  }
  // And the writer still works once the fault clears.
  core::write_file(path("data.txt"), "new contents");
  EXPECT_EQ(core::read_file(path("data.txt")), "new contents");
}

TEST_F(FileIoTest, FastqPairFilesRoundTrip) {
  std::vector<FastqPair> pairs = {
      {{"a/1", "ACGT", "IIII"}, {"a/2", "TTTT", "JJJJ"}},
      {{"b/1", "GG", "AB"}, {"b/2", "CC", "CD"}},
  };
  core::save_fastq_pair_files(path("r_1.fq"), path("r_2.fq"), pairs);
  const auto loaded =
      core::load_fastq_pair_files(path("r_1.fq"), path("r_2.fq"));
  EXPECT_EQ(loaded, pairs);
}

TEST_F(FileIoTest, FastaFileRoundTrip) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::genome(30'000, 2, 3));
  core::save_fasta_file(path("ref.fa"), ref);
  const Reference loaded = core::load_fasta_file(path("ref.fa"));
  ASSERT_EQ(loaded.contig_count(), ref.contig_count());
  for (std::size_t i = 0; i < ref.contig_count(); ++i) {
    EXPECT_EQ(loaded.contig(static_cast<std::int32_t>(i)).sequence,
              ref.contig(static_cast<std::int32_t>(i)).sequence);
  }
}

TEST_F(FileIoTest, SamFileRoundTrip) {
  SamHeader header;
  header.contigs = {{"c1", 500}};
  SamRecord rec;
  rec.qname = "r";
  rec.contig_id = 0;
  rec.pos = 10;
  rec.mapq = 60;
  rec.cigar = parse_cigar("4M");
  rec.sequence = "ACGT";
  rec.quality = "IIII";
  core::save_sam_file(path("a.sam"), header, {rec});
  const SamFile loaded = core::load_sam_file(path("a.sam"));
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0], rec);
}

TEST_F(FileIoTest, VcfFileRoundTrip) {
  VcfHeader header;
  header.contigs = {{"c1", 500}};
  std::vector<VcfRecord> records = {
      {0, 42, ".", "A", "G", 77.0, Genotype::kHet}};
  core::save_vcf_file(path("a.vcf"), header, records);
  const VcfFile loaded = core::load_vcf_file(path("a.vcf"));
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].pos, 42);
  EXPECT_EQ(loaded.records[0].alt, "G");
}

// --- GBAM -----------------------------------------------------------------

std::vector<SamRecord> sample_records(std::size_t n) {
  Rng rng(311);
  std::vector<SamRecord> out;
  const char bases[] = {'A', 'C', 'G', 'T'};
  for (std::size_t i = 0; i < n; ++i) {
    SamRecord r;
    r.qname = "read" + std::to_string(i);
    r.flag = static_cast<std::uint16_t>(rng.below(0x800));
    r.contig_id = static_cast<std::int32_t>(rng.below(2));
    r.pos = static_cast<std::int64_t>(rng.below(100'000));
    r.mapq = static_cast<std::uint8_t>(rng.below(61));
    std::string seq(80, 'A');
    for (auto& c : seq) c = bases[rng.below(4)];
    r.cigar = {{CigarOp::kMatch, 80}};
    r.sequence = std::move(seq);
    r.quality = std::string(80, static_cast<char>(40 + rng.below(30)));
    out.push_back(std::move(r));
  }
  return out;
}

SamHeader gbam_header() {
  SamHeader h;
  h.contigs = {{"chr1", 100'000}, {"chr2", 100'000}};
  h.coordinate_sorted = true;
  return h;
}

class GbamCodecTest : public ::testing::TestWithParam<Codec> {};

TEST_P(GbamCodecTest, RoundTrip) {
  const auto records = sample_records(500);
  GbamWriteOptions options;
  options.codec = GetParam();
  options.block_records = 128;
  const auto bytes = write_gbam(gbam_header(), records, options);
  const SamFile loaded = read_gbam(bytes);
  EXPECT_EQ(loaded.header, gbam_header());
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(loaded.records[i], records[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, GbamCodecTest,
                         ::testing::Values(Codec::kJavaLike, Codec::kKryoLike,
                                           Codec::kGpf),
                         [](const auto& info) {
                           return codec_name(info.param);
                         });

TEST(Gbam, BlockGranularAccess) {
  const auto records = sample_records(300);
  GbamWriteOptions options;
  options.block_records = 100;
  const auto bytes = write_gbam(gbam_header(), records, options);
  const GbamReader reader(bytes);
  EXPECT_EQ(reader.block_count(), 3u);
  EXPECT_EQ(reader.record_count(), 300u);
  // Blocks decode independently and in order.
  const auto block1 = reader.read_block(1);
  ASSERT_EQ(block1.size(), 100u);
  EXPECT_EQ(block1[0], records[100]);
  EXPECT_THROW(reader.read_block(3), std::out_of_range);
}

TEST(Gbam, EmptyFile) {
  const auto bytes = write_gbam(gbam_header(), {}, {});
  const SamFile loaded = read_gbam(bytes);
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.header.contigs.size(), 2u);
}

TEST(Gbam, GpfCodecSmallerThanKryo) {
  const auto records = sample_records(2000);
  GbamWriteOptions gpf_options;
  gpf_options.codec = Codec::kGpf;
  GbamWriteOptions kryo_options;
  kryo_options.codec = Codec::kKryoLike;
  EXPECT_LT(write_gbam(gbam_header(), records, gpf_options).size(),
            write_gbam(gbam_header(), records, kryo_options).size());
}

TEST(Gbam, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = {'N', 'O', 'P', 'E', '1', 0, 0, 0};
  EXPECT_THROW(read_gbam(bytes), std::invalid_argument);
}

TEST(Gbam, TrailingBytesRejected) {
  auto bytes = write_gbam(gbam_header(), sample_records(10), {});
  bytes.push_back(0xff);
  EXPECT_THROW(read_gbam(bytes), std::invalid_argument);
}

TEST(Gbam, ZeroBlockRecordsRejected) {
  GbamWriteOptions options;
  options.block_records = 0;
  EXPECT_THROW(write_gbam(gbam_header(), sample_records(1), options),
               std::invalid_argument);
}

TEST_F(FileIoTest, GbamFileRoundTrip) {
  const auto records = sample_records(200);
  save_gbam_file(path("a.gbam"), gbam_header(), records);
  const SamFile loaded = load_gbam_file(path("a.gbam"));
  EXPECT_EQ(loaded.records, records);
}


TEST(Gbam, DistributedBlockReadThroughEngine) {
  // The point of GBAM's blocking: a distributed reader assigns block
  // ranges to engine tasks.
  const auto records = sample_records(1000);
  GbamWriteOptions options;
  options.block_records = 100;
  const auto bytes = write_gbam(gbam_header(), records, options);
  const auto reader = std::make_shared<GbamReader>(
      std::span<const std::uint8_t>(bytes.data(), bytes.size()));

  engine::Engine engine({.worker_threads = 2});
  std::vector<std::size_t> block_ids(reader->block_count());
  std::iota(block_ids.begin(), block_ids.end(), 0);
  auto blocks = engine.parallelize(block_ids, 4);
  auto loaded = blocks.flat_map("gbam.read", [reader](const std::size_t& b) {
    return reader->read_block(b);
  });
  EXPECT_EQ(loaded.count(), records.size());
  EXPECT_EQ(loaded.collect(), records);
}

}  // namespace
}  // namespace gpf
