// Tests for the tracing subsystem: recorder semantics, the Chrome
// trace_event exporter, and the golden-shape check — a faulted engine run
// whose exported trace must be valid JSON with monotonic per-track
// timestamps and visible retry / speculative / shuffle spans.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.hpp"
#include "engine/dataset.hpp"
#include "engine/fault_injector.hpp"
#include "simcluster/cluster.hpp"

namespace gpf::trace {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader — just enough to validate the exporter's output
// without an external dependency.  Throws std::runtime_error on malformed
// input; the tests treat any throw as a failure.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (i_ != s_.size()) throw std::runtime_error("trailing junk");
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' got '" +
                               peek() + "'");
    }
    ++i_;
  }

  bool try_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(i_, n, lit) == 0) {
      i_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.str = string();
      return v;
    }
    if (try_literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (try_literal("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (try_literal("null")) return v;
    return number();
  }

  JsonValue number() {
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) throw std::runtime_error("bad number");
    i_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) throw std::runtime_error("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) throw std::runtime_error("bad escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16));
          i_ += 4;
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          throw std::runtime_error("bad escape char");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// ---------------------------------------------------------------------------

std::vector<int> iota_vec(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

engine::ShuffleCodec<int> int_codec() {
  engine::ShuffleCodec<int> c;
  c.encode = [](std::span<const int> xs) {
    std::vector<std::uint8_t> out(xs.size() * sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), xs.data(), out.size());
    return out;
  };
  c.decode = [](std::span<const std::uint8_t> bytes) {
    std::vector<int> out(bytes.size() / sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  };
  return c;
}

/// RAII guard: whatever a test does, the global recorder leaves disabled
/// and empty so later tests (and other suites) see a clean slate.
struct RecorderGuard {
  RecorderGuard() { TraceRecorder::global().clear(); }
  ~RecorderGuard() {
    TraceRecorder::global().disable();
    TraceRecorder::global().clear();
  }
};

TEST(TraceRecorder, DisabledRecordsNothing) {
  RecorderGuard guard;
  auto& r = TraceRecorder::global();
  ASSERT_FALSE(r.enabled());
  r.record(Span{.name = "x"});
  { ScopedSpan s("y", SpanKind::kTask); }
  EXPECT_TRUE(r.drain().empty());
}

TEST(TraceRecorder, ScopedSpanRecordsAndMarksFailure) {
  RecorderGuard guard;
  auto& r = TraceRecorder::global();
  r.enable();
  { ScopedSpan ok("fine", SpanKind::kStage); }
  try {
    ScopedSpan bad("boom", SpanKind::kTask, /*task=*/7, /*attempt=*/0);
    throw std::runtime_error("injected");
  } catch (const std::runtime_error&) {
  }
  r.disable();
  const auto spans = r.drain();
  ASSERT_EQ(spans.size(), 2u);
  bool saw_ok = false;
  bool saw_failed = false;
  for (const auto& s : spans) {
    EXPECT_GE(s.dur_us, 0.0);
    if (s.name == "fine") {
      saw_ok = true;
      EXPECT_FALSE(s.failed);
    }
    if (s.name == "boom") {
      saw_failed = true;
      EXPECT_TRUE(s.failed);
      EXPECT_EQ(s.task, 7);
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_failed);
}

TEST(TraceRecorder, DrainClearsBuffers) {
  RecorderGuard guard;
  auto& r = TraceRecorder::global();
  r.enable();
  r.record(Span{.name = "once"});
  r.disable();
  EXPECT_EQ(r.drain().size(), 1u);
  EXPECT_TRUE(r.drain().empty());
}

TEST(ChromeTrace, EscapesAwkwardNames) {
  std::vector<Span> spans(1);
  spans[0].name = "we\"ird\\name\nwith\tcontrols";
  spans[0].kind = SpanKind::kStage;
  const std::string json = write_chrome_trace(spans);
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse());
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  bool found = false;
  for (const auto& e : events.array) {
    if (e.at("ph").str == "X") {
      EXPECT_EQ(e.at("name").str, spans[0].name);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Regression: span names are arbitrary bytes (a hostile FASTQ header or a
// corrupted stage label can carry anything), and the exporter must still
// emit valid JSON.  Invalid UTF-8 is escaped as \u00XX; valid multi-byte
// UTF-8 passes through untouched.  The reference parser folds \u escapes
// >= 0x80 to '?', which gives the expected round-trip below.
TEST(ChromeTrace, ArbitraryByteNamesStayValidJson) {
  struct Case {
    std::string name;      // raw span name
    std::string expected;  // after the parser's '?' folding
  };
  const std::vector<Case> cases = {
      // Control characters round-trip exactly (escaped, then unescaped).
      {std::string("\x01\x02\x1f ctrl\x7f", 9),
       std::string("\x01\x02\x1f ctrl\x7f", 9)},
      // Bytes that can never appear in UTF-8.
      {"bad\xff\xfe tail", "bad?? tail"},
      // A lone continuation byte and a stray start byte.
      {"\x80 mid \xc2", "? mid ?"},
      // Valid multi-byte UTF-8 passes through raw.
      {"g\xc3\xa9nome \xf0\x9f\xa7\xac", "g\xc3\xa9nome \xf0\x9f\xa7\xac"},
      // Truncated 3-byte sequence at the end of the name.
      {"abc\xe2\x82", "abc??"},
      // Overlong encoding of '/' — must not pass as UTF-8.
      {"\xc0\xaf", "??"},
      // UTF-16 surrogate encoded as UTF-8 — invalid.
      {"\xed\xa0\x80", "???"},
      // Quotes and backslashes mixed with junk.
      {"a\"b\\c\xff", "a\"b\\c?"},
  };
  std::vector<Span> spans;
  for (const auto& c : cases) {
    Span s;
    s.name = c.name;
    s.kind = SpanKind::kStage;
    spans.push_back(std::move(s));
  }
  const std::string json = write_chrome_trace(spans);
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse()) << json;
  std::vector<std::string> names;
  for (const auto& e : doc.at("traceEvents").array) {
    if (e.at("ph").str == "X") names.push_back(e.at("name").str);
  }
  ASSERT_EQ(names.size(), cases.size());
  // write_chrome_trace sorts by track, which preserves the input order for
  // same-track spans (stable sort).
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(names[i], cases[i].expected) << "case " << i;
  }
}

// Every possible single-byte name must still export as parseable JSON.
TEST(ChromeTrace, EverySingleByteNameParses) {
  std::vector<Span> spans;
  for (int b = 0; b < 256; ++b) {
    Span s;
    s.name = std::string(1, static_cast<char>(b));
    s.kind = SpanKind::kStage;
    spans.push_back(std::move(s));
  }
  const std::string json = write_chrome_trace(spans);
  EXPECT_NO_THROW(JsonParser(json).parse());
}

TEST(ChromeTrace, EmptySpanListIsStillValidJson) {
  const std::string json = write_chrome_trace(std::vector<Span>{});
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse());
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

// The golden-shape test: a faulted engine run (one injected failure, one
// straggler past the speculation threshold) plus a simulated replay must
// export as valid Chrome trace JSON whose per-track timestamps are
// monotonic and whose retry / speculative / shuffle spans are present.
TEST(ChromeTrace, FaultedEngineRunGoldenShape) {
  RecorderGuard guard;
  auto& recorder = TraceRecorder::global();
  recorder.enable();

  engine::Engine engine({.worker_threads = 4});
  engine.set_fault_injector(std::make_shared<engine::FaultInjector>(
      11, std::vector<engine::FaultRule>{
              engine::FaultRule::fail_task("double", /*task=*/5),
              engine::FaultRule::delay_task("double", /*task=*/3,
                                            /*delay_ms=*/120.0)}));
  auto ds = engine.parallelize(iota_vec(64), 8)
                .map("double", [](const int& x) { return 2 * x; });
  auto shuffled =
      ds.with_codec(int_codec()).shuffle("bykey", 4, [](const int& x) {
        return static_cast<std::uint64_t>(x % 4);
      });
  EXPECT_EQ(shuffled.count(), 64u);

  recorder.disable();
  std::vector<Span> spans = recorder.drain();
  ASSERT_FALSE(spans.empty());

  // Ride a small virtual replay alongside, as gpf_tool trace does.
  sim::SimJob job;
  job.stages.push_back(
      {"double", std::vector<sim::SimTask>(8, {0.01, 0, 0, 0}), "phase"});
  auto sim_spans =
      sim::simulate_to_spans(job, sim::ClusterConfig::with_cores(4));
  spans.insert(spans.end(), sim_spans.begin(), sim_spans.end());

  const std::string json = write_chrome_trace(spans);
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse());
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);

  bool named_pid0 = false;
  bool named_pid1 = false;
  bool saw_retry = false;
  bool saw_failed = false;
  bool saw_speculative = false;
  bool saw_ser = false;
  bool saw_deser = false;
  bool saw_stage = false;
  bool saw_sim_task = false;
  std::map<std::pair<double, double>, double> last_ts;
  for (const auto& e : events.array) {
    const std::string& ph = e.at("ph").str;
    if (ph == "M") {
      if (e.at("pid").number == 0.0) named_pid0 = true;
      if (e.at("pid").number == 1.0) named_pid1 = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    const double ts = e.at("ts").number;
    const double dur = e.at("dur").number;
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    // Monotonic within each (pid, tid) track, in file order.
    const auto key =
        std::make_pair(e.at("pid").number, e.at("tid").number);
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts[key] = ts;

    const std::string& cat = e.at("cat").str;
    const auto& args = e.at("args");
    if (cat == "stage") saw_stage = true;
    if (cat == "shuffle_ser") saw_ser = true;
    if (cat == "shuffle_deser") saw_deser = true;
    if (cat == "sim_task") {
      saw_sim_task = true;
      EXPECT_EQ(e.at("pid").number, 1.0);
    }
    if (cat == "task") {
      EXPECT_EQ(e.at("pid").number, 0.0);
      if (args.at("retry").boolean) saw_retry = true;
      if (args.at("failed").boolean) saw_failed = true;
      if (args.at("speculative").boolean) {
        saw_speculative = true;
        EXPECT_EQ(args.at("attempt").number, -1.0);
      }
    }
  }
  EXPECT_TRUE(named_pid0);
  EXPECT_TRUE(named_pid1);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_ser);
  EXPECT_TRUE(saw_deser);
  EXPECT_TRUE(saw_retry);        // task 5's injected failure was retried
  EXPECT_TRUE(saw_failed);       // ...and the failed attempt is on the track
  EXPECT_TRUE(saw_speculative);  // task 3's straggler launched a copy
  EXPECT_TRUE(saw_sim_task);
}

}  // namespace
}  // namespace gpf::trace
