// Runtime suite: wire framing, the retriable channel, and the REAL
// multi-process distributed runtime over loopback.
//
// The loopback tests spawn actual gpf_worker processes (GPF_WORKER_BIN is
// injected by CMake), run a socket shuffle through them, and compare the
// result bit for bit against the single-process engine — including while a
// worker is SIGKILLed mid-stage.  Recovery must flow through the SAME
// fault-tolerant stage executor the in-process engine uses: a dead worker
// surfaces as WorkerLost (retried on another worker) or as a missing block
// (recomputed from lineage), never as a second recovery mechanism.
//
// The framing fuzz runs under GPF_FUZZ_SEED (swept by CI alongside the
// parser fuzz); decode_frame must reject arbitrary garbage with a typed
// FrameError, never crash or mis-parse.
#include <gtest/gtest.h>
#include <signal.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "engine/dataset.hpp"
#include "engine/fault_injector.hpp"
#include "net/channel.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "runtime/block_store.hpp"
#include "runtime/distributed.hpp"
#include "runtime/worker.hpp"
#include "runtime/worker_pool.hpp"

namespace gpf::runtime {
namespace {

std::uint64_t fuzz_seed() {
  return engine::seed_from_env("GPF_FUZZ_SEED", 42);
}

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---------------------------------------------------------------------------
// Framing

TEST(Frame, RoundTrip) {
  net::Frame f;
  f.type = 7;
  f.request_id = 0x1122334455667788ULL;
  f.payload = bytes_of("genomes in flight");
  const auto wire = net::encode_frame(f);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + f.payload.size());
  const net::Frame back = net::decode_frame(as_span(wire));
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.request_id, f.request_id);
  EXPECT_EQ(back.payload, f.payload);
}

TEST(Frame, EmptyPayloadRoundTrip) {
  net::Frame f;
  f.type = 1;
  const auto wire = net::encode_frame(f);
  const net::Frame back = net::decode_frame(as_span(wire));
  EXPECT_EQ(back.type, 1u);
  EXPECT_TRUE(back.payload.empty());
}

TEST(Frame, BadMagicRejected) {
  auto wire = net::encode_frame(net::Frame{2, 9, bytes_of("x")});
  wire[0] ^= 0xff;
  try {
    net::decode_frame(as_span(wire));
    FAIL() << "bad magic accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kBadMagic);
  }
}

TEST(Frame, TruncatedHeaderRejected) {
  const auto wire = net::encode_frame(net::Frame{2, 9, bytes_of("abc")});
  for (const std::size_t cut : {std::size_t{1}, std::size_t{4},
                                net::kFrameHeaderBytes - 1}) {
    try {
      net::decode_frame(std::span<const std::uint8_t>(wire.data(), cut));
      FAIL() << "accepted " << cut << "-byte header";
    } catch (const net::FrameError& e) {
      EXPECT_EQ(e.fault(), net::FrameFault::kTruncated);
    }
  }
}

TEST(Frame, TruncatedPayloadRejected) {
  const auto wire = net::encode_frame(net::Frame{2, 9, bytes_of("abcdef")});
  try {
    net::decode_frame(
        std::span<const std::uint8_t>(wire.data(), wire.size() - 2));
    FAIL() << "accepted truncated payload";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kTruncated);
  }
}

TEST(Frame, OversizedPayloadRejected) {
  net::Frame f;
  f.type = 3;
  f.payload.assign(64, 0xab);
  const auto wire = net::encode_frame(f);
  net::FrameLimits limits;
  limits.max_payload = 16;
  try {
    net::decode_frame(as_span(wire), limits);
    FAIL() << "oversized payload accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kOversized);
  }
}

TEST(Frame, CorruptedPayloadFailsChecksum) {
  auto wire = net::encode_frame(net::Frame{2, 9, bytes_of("precious bytes")});
  wire[net::kFrameHeaderBytes + 3] ^= 0x01;
  try {
    net::decode_frame(as_span(wire));
    FAIL() << "corrupted payload accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kChecksum);
  }
}

TEST(Frame, GarbageRejected) {
  std::vector<std::uint8_t> garbage(256, 0xff);
  EXPECT_THROW(net::decode_frame(as_span(garbage)), net::FrameError);
}

// Deterministic framing fuzz: random buffers and single-byte mutations of
// valid frames must always produce either a clean decode or a typed
// FrameError — any other exception (or a crash) is a bug.  Flips inside
// the payload region must never decode silently: FNV-1a's per-byte step
// h = (h ^ b) * prime is injective in h, so a single-byte change always
// changes the final checksum.
TEST(FrameFuzz, GarbageAndMutationsNeverCrash) {
  Rng rng(fuzz_seed());
  net::FrameLimits limits;
  limits.max_payload = 1 << 16;
  int rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> blob;
    bool payload_mutated = false;
    if (iter % 2 == 0) {
      // Pure garbage of random length.
      blob.resize(rng.below(200));
      for (auto& b : blob) b = static_cast<std::uint8_t>(rng.below(256));
    } else {
      // A valid frame with one byte flipped somewhere.
      net::Frame f;
      f.type = static_cast<std::uint32_t>(rng.below(16));
      f.request_id = rng.next();
      f.payload.resize(1 + rng.below(64));
      for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.below(256));
      blob = net::encode_frame(f);
      const std::size_t at = rng.below(blob.size());
      blob[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      payload_mutated = at >= net::kFrameHeaderBytes;
    }
    try {
      net::Frame out = net::decode_frame(as_span(blob), limits);
      EXPECT_LE(out.payload.size(), limits.max_payload);
      EXPECT_FALSE(payload_mutated)
          << "seed " << fuzz_seed() << " iter " << iter
          << ": mutated payload decoded cleanly";
    } catch (const net::FrameError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(Frame, RoundTripOverSocket) {
  net::Listener listener = net::Listener::bind_loopback(0);
  net::Socket client = net::Socket::connect_tcp("127.0.0.1", listener.port(),
                                                2000);
  net::Socket server = listener.accept(2000);
  ASSERT_TRUE(server.valid());

  net::Frame f;
  f.type = 11;
  f.request_id = 99;
  f.payload = bytes_of("over the wire");
  net::write_frame(client, f, 2000);
  const net::Frame got = net::read_frame(server, {}, 2000);
  EXPECT_EQ(got.type, f.type);
  EXPECT_EQ(got.request_id, f.request_id);
  EXPECT_EQ(got.payload, f.payload);
}

TEST(Frame, CleanDisconnectIsEof) {
  net::Listener listener = net::Listener::bind_loopback(0);
  net::Socket client = net::Socket::connect_tcp("127.0.0.1", listener.port(),
                                                2000);
  net::Socket server = listener.accept(2000);
  ASSERT_TRUE(server.valid());
  client.close();
  EXPECT_THROW(net::read_frame(server, {}, 2000), net::FrameEof);
}

TEST(Frame, MidFrameDisconnectIsTruncated) {
  net::Listener listener = net::Listener::bind_loopback(0);
  net::Socket client = net::Socket::connect_tcp("127.0.0.1", listener.port(),
                                                2000);
  net::Socket server = listener.accept(2000);
  ASSERT_TRUE(server.valid());
  const auto wire = net::encode_frame(net::Frame{5, 1, bytes_of("partial")});
  client.send_all(wire.data(), 9, 2000);  // header cut short
  client.close();
  try {
    net::read_frame(server, {}, 2000);
    FAIL() << "mid-frame EOF accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kTruncated);
  }
}

// ---------------------------------------------------------------------------
// Channel + in-process WorkerServer

/// Runs a WorkerServer on a background thread for the duration of a test.
class ServerGuard {
 public:
  explicit ServerGuard(WorkerConfig config = {}) : server_(config) {
    thread_ = std::thread([this] { server_.serve(); });
  }
  ~ServerGuard() {
    server_.request_stop();
    thread_.join();
  }
  WorkerServer& operator*() { return server_; }
  WorkerServer* operator->() { return &server_; }

 private:
  WorkerServer server_;
  std::thread thread_;
};

std::vector<std::uint8_t> sleep_echo_payload(std::uint32_t sleep_ms,
                                             const std::string& echo) {
  ByteWriter w;
  w.u32(sleep_ms);
  w.raw(as_span(bytes_of(echo)));
  return w.take();
}

std::vector<std::uint8_t> run_task_payload(const std::string& kind,
                                           std::vector<std::uint8_t> body) {
  TaskRequest req;
  req.kind = kind;
  req.stage = "test";
  req.payload = std::move(body);
  ByteWriter w;
  encode_task_request(w, req);
  return w.take();
}

TEST(Channel, PingAndEcho) {
  register_builtin_tasks();
  ServerGuard server;
  net::RetriableChannel chan("127.0.0.1", server->port());

  const net::Frame pong = chan.call(kPing, {});
  ASSERT_EQ(pong.type, kPong);
  ByteReader r(as_span(pong.payload));
  EXPECT_EQ(r.i32(), 0);  // worker_id

  const auto payload =
      run_task_payload("sleep_echo", sleep_echo_payload(0, "hello"));
  const net::Frame resp = chan.call(kRunTask, as_span(payload));
  ASSERT_EQ(resp.type, kTaskOk);
  EXPECT_EQ(resp.payload, bytes_of("hello"));
  EXPECT_EQ(server->tasks_executed(), 1u);
}

TEST(Channel, UnknownTaskKindIsTypedError) {
  register_builtin_tasks();
  ServerGuard server;
  net::RetriableChannel chan("127.0.0.1", server->port());
  const auto payload = run_task_payload("no_such_kind", {});
  const net::Frame resp = chan.call(kRunTask, as_span(payload));
  ASSERT_EQ(resp.type, kTaskError);
  ByteReader r(as_span(resp.payload));
  const TaskError err = decode_task_error(r);
  EXPECT_EQ(err.code, TaskErrorCode::kUnknownKind);
}

TEST(Channel, ExhaustsRetriesAgainstDeadPort) {
  // Grab an ephemeral port and close the listener so nothing answers.
  std::uint16_t dead_port;
  {
    net::Listener l = net::Listener::bind_loopback(0);
    dead_port = l.port();
  }
  net::ChannelConfig cfg;
  cfg.connect_timeout_ms = 100;
  cfg.call_timeout_ms = 100;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_initial_ms = 1;
  cfg.retry.backoff_max_ms = 5;
  net::RetriableChannel chan("127.0.0.1", dead_port, cfg);
  EXPECT_THROW(chan.call(kPing, {}), net::ChannelError);
}

TEST(Channel, SlowResponseTimesOut) {
  register_builtin_tasks();
  ServerGuard server;
  net::RetriableChannel chan("127.0.0.1", server->port());
  const auto payload =
      run_task_payload("sleep_echo", sleep_echo_payload(2000, "late"));
  EXPECT_THROW(chan.call(kRunTask, as_span(payload), /*timeout_ms=*/100,
                         /*max_attempts=*/1),
               net::ChannelError);
}

// ---------------------------------------------------------------------------
// Block store retention

TEST(BlockStore, ReleaseNamespaceDropsOnlyThatStage) {
  // Regression: worker block stores never evicted, so every completed
  // shuffle's blocks pinned worker memory for the process lifetime.
  BlockStore store;
  const auto blk = [](std::size_t n) {
    StoredBlock b;
    b.bytes = std::make_shared<const std::vector<std::uint8_t>>(n, 0xab);
    return b;
  };
  store.put(BlockId{"jobA", 0, 0}.key(), blk(10));
  store.put(BlockId{"jobA", 1, 2}.key(), blk(20));
  store.put(BlockId{"jobB", 0, 0}.key(), blk(30));
  EXPECT_EQ(store.total_bytes(), 60u);

  EXPECT_EQ(store.release_namespace("jobA"), 30u);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.total_bytes(), 30u);
  EXPECT_TRUE(store.get(BlockId{"jobB", 0, 0}.key()).has_value());

  // Idempotent, and the "stage/" prefix never eats a sibling stage whose
  // name merely starts with the same characters.
  EXPECT_EQ(store.release_namespace("jobA"), 0u);
  store.put(BlockId{"jobAA", 0, 0}.key(), blk(5));
  EXPECT_EQ(store.release_namespace("jobA"), 0u);
  EXPECT_EQ(store.total_bytes(), 35u);
}

TEST(BlockStore, ReleaseKeepsFetchedHandlesAlive) {
  BlockStore store;
  StoredBlock b;
  b.bytes = std::make_shared<const std::vector<std::uint8_t>>(4, 0x5a);
  store.put(BlockId{"job", 0, 0}.key(), b);
  const auto fetched = store.get(BlockId{"job", 0, 0}.key());
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(store.release_namespace("job"), 4u);
  EXPECT_EQ(store.total_bytes(), 0u);
  // The reader's shared pointer keeps the bytes valid after release.
  EXPECT_EQ(fetched->bytes->size(), 4u);
  EXPECT_EQ((*fetched->bytes)[0], 0x5a);
}

// ---------------------------------------------------------------------------
// Multi-process loopback runtime

WorkerPoolConfig pool_config() {
  WorkerPoolConfig cfg;
  cfg.worker_binary = GPF_WORKER_BIN;
  return cfg;
}

/// Deterministic 8-byte records (the key_u64 partitioner's native shape).
std::vector<RecordPartition> make_inputs(std::size_t n_parts,
                                         std::size_t records_per_part,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RecordPartition> inputs(n_parts);
  for (auto& part : inputs) {
    std::vector<std::uint64_t> xs(records_per_part);
    for (auto& x : xs) x = rng.next();
    part = u64_records(xs);
  }
  return inputs;
}

/// The single-process engine's answer for the same shuffle: the loopback
/// runtime must match this bit for bit.
std::vector<RecordPartition> single_process_shuffle(
    const std::vector<RecordPartition>& inputs, std::size_t num_out) {
  engine::Engine eng;
  auto ds = eng.make_dataset(inputs);
  auto shuffled = ds.shuffle("ref.shuffle", num_out,
                             [](const std::vector<std::uint8_t>& rec) {
                               std::uint64_t key = 0;
                               std::memcpy(&key, rec.data(), 8);
                               return key;
                             });
  return shuffled.partitions();
}

TEST(Loopback, ShuffleMatchesSingleProcessBitForBit) {
  const auto inputs = make_inputs(4, 200, 1234);
  const std::size_t num_out = 5;
  const auto expected = single_process_shuffle(inputs, num_out);

  WorkerPool pool(pool_config());
  pool.spawn_local(3);
  engine::Engine eng;
  DistributedShuffleOptions opt;
  opt.partitioner = "key_u64";
  const auto got =
      distributed_shuffle(eng, pool, "dist.shuffle", inputs, num_out, opt);

  EXPECT_EQ(got, expected);
  ASSERT_EQ(eng.metrics().stage_count(), 1u);
  const auto& stage = eng.metrics().stages().back();
  EXPECT_TRUE(stage.wide);
  EXPECT_GT(stage.shuffle_write_bytes, 0u);
  EXPECT_EQ(stage.shuffle_write_bytes, stage.shuffle_read_bytes);
  pool.shutdown_all();
}

TEST(Loopback, ShuffleReleasesWorkerBlocksOnSuccess) {
  // Retention regression, end to end: after a successful shuffle the
  // driver broadcasts release_blocks, so every worker's store must be
  // back to zero bytes — completed jobs stop pinning worker memory.
  const auto inputs = make_inputs(4, 64, 99);
  WorkerPool pool(pool_config());
  pool.spawn_local(2);
  engine::Engine eng;
  DistributedShuffleOptions opt;
  opt.partitioner = "key_u64";
  distributed_shuffle(eng, pool, "dist.release", inputs, 3, opt);

  TaskRequest req;
  req.kind = "release_blocks";
  req.stage = "dist.release";
  ByteWriter payload;
  payload.str("dist.release");
  req.payload = payload.take();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!pool.alive(static_cast<int>(i))) continue;
    auto [w, frame] = pool.dispatch_to(static_cast<int>(i), req);
    ASSERT_EQ(frame.type, static_cast<std::uint32_t>(kTaskOk));
    ByteReader r(as_span(frame.payload));
    EXPECT_EQ(r.u64(), 0u) << "driver left blocks behind on worker " << i;
    EXPECT_EQ(r.u64(), 0u) << "worker " << i << " still pins bytes";
  }
  pool.shutdown_all();
}

TEST(Loopback, SigkillMidMapStageRecovers) {
  const auto inputs = make_inputs(6, 64, 77);
  const std::size_t num_out = 4;
  const auto expected = single_process_shuffle(inputs, num_out);

  WorkerPool pool(pool_config());
  pool.spawn_local(3);
  // One driver thread per map task: every dispatch must be in flight when
  // the kill lands, regardless of the host's core count (driver threads
  // just block in socket reads while the workers sleep).
  engine::Engine eng(engine::EngineConfig{.worker_threads = 6});
  DistributedShuffleOptions opt;
  opt.partitioner = "key_u64";
  // Every map task sleeps 80 ms on the worker; the kill lands at ~40 ms,
  // guaranteed mid-map, so in-flight dispatches to the victim fail with
  // WorkerLost and the executor reruns them on the survivors.
  opt.map_delay_ms = 80;

  std::thread killer([&pool] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    pool.kill_worker(1, SIGKILL);
  });
  const auto got =
      distributed_shuffle(eng, pool, "dist.chaos", inputs, num_out, opt);
  killer.join();

  EXPECT_EQ(got, expected);
  EXPECT_EQ(pool.alive_count(), 2u);
  const auto& stage = eng.metrics().stages().back();
  EXPECT_FALSE(stage.failed);
  EXPECT_GE(stage.failed_attempts + stage.task_retries, 1u);
  pool.shutdown_all();
}

TEST(Loopback, LostBlocksRecomputeFromLineage) {
  const auto inputs = make_inputs(5, 48, 9001);
  const std::size_t num_out = 3;
  const auto expected = single_process_shuffle(inputs, num_out);

  WorkerPool pool(pool_config());
  pool.spawn_local(3);
  engine::Engine eng;
  DistributedShuffleOptions opt;
  opt.partitioner = "key_u64";
  // Kill a worker AFTER its map blocks are committed and before any
  // reduce dispatch: its blocks are gone, so reduce tasks hit
  // kMissingBlock and the driver recomputes the dead worker's map tasks
  // from the driver-held inputs (lineage), then retries the reduce.
  opt.on_map_complete = [&pool] { pool.kill_worker(0, SIGKILL); };

  const auto got =
      distributed_shuffle(eng, pool, "dist.lineage", inputs, num_out, opt);

  EXPECT_EQ(got, expected);
  EXPECT_EQ(pool.alive_count(), 2u);
  const auto& stage = eng.metrics().stages().back();
  EXPECT_FALSE(stage.failed);
  // At least one reduce attempt died on the missing block and retried.
  EXPECT_GE(stage.task_retries, 1u);
  pool.shutdown_all();
}

TEST(Loopback, HeartbeatDetectsSilentDeath) {
  WorkerPool pool(pool_config());
  pool.spawn_local(2);
  ASSERT_EQ(pool.alive_count(), 2u);

  // Kill the process directly (not via kill_worker, which marks it dead
  // itself) so only the heartbeat monitor can notice.
  ::kill(pool.info(1).pid, SIGKILL);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pool.alive(1) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(pool.alive(1));
  EXPECT_EQ(pool.alive_count(), 1u);
  pool.shutdown_all();
}

TEST(Loopback, InjectedStragglerTriggersSpeculation) {
  const auto inputs = make_inputs(4, 32, 555);
  const std::size_t num_out = 2;
  const auto expected = single_process_shuffle(inputs, num_out);

  WorkerPool pool(pool_config());
  pool.spawn_local(2);
  engine::Engine eng;
  // Driver-side straggler on map task 0, above the 20 ms speculation
  // threshold: the stage executor launches a speculative copy on another
  // worker and the first finisher wins — same machinery, real processes.
  auto injector = std::make_shared<engine::FaultInjector>(
      7, std::vector<engine::FaultRule>{
             engine::FaultRule::delay_task("dist.spec", 0, 60.0)});
  eng.set_fault_injector(injector);

  DistributedShuffleOptions opt;
  opt.partitioner = "key_u64";
  const auto got =
      distributed_shuffle(eng, pool, "dist.spec", inputs, num_out, opt);

  EXPECT_EQ(got, expected);
  const auto& stage = eng.metrics().stages().back();
  EXPECT_EQ(stage.speculative_launches, 1u);
  EXPECT_GE(stage.injected_faults, 1u);
  pool.shutdown_all();
}

TEST(Loopback, MissingBlockSurfacesAsTypedError) {
  WorkerPool pool(pool_config());
  pool.spawn_local(2);

  // Ask a worker to reduce against a block nobody ever produced.
  ByteWriter w;
  w.uvarint(0);  // reduce partition
  w.uvarint(1);  // one input block
  w.u16(pool.info(0).port);
  w.u64(0xdeadbeef);
  w.uvarint(3);
  TaskRequest req;
  req.kind = "shuffle_reduce";
  req.stage = "ghost";
  req.payload = w.take();
  try {
    pool.run_task(req);
    FAIL() << "reduce over a missing block succeeded";
  } catch (const RemoteTaskError& e) {
    EXPECT_EQ(e.error().code, TaskErrorCode::kMissingBlock);
    EXPECT_EQ(e.error().detail, 0u);
  }
  pool.shutdown_all();
}

TEST(Loopback, AllWorkersDeadIsTerminal) {
  WorkerPool pool(pool_config());
  pool.spawn_local(1);
  pool.kill_worker(0, SIGKILL);
  TaskRequest req;
  req.kind = "sleep_echo";
  req.stage = "none";
  req.payload = sleep_echo_payload(0, "x");
  EXPECT_THROW(pool.run_task(req), NoLiveWorkers);
  pool.shutdown_all();
}

}  // namespace
}  // namespace gpf::runtime
