// Unit and property tests for src/compress: bit I/O, Huffman, the 2-bit
// sequence codec, the delta/Huffman quality codec, and the three record
// serializers.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "compress/bitio.hpp"
#include "compress/huffman.hpp"
#include "compress/qual_codec.hpp"
#include "compress/record_codec.hpp"
#include "compress/seq_codec.hpp"

namespace gpf {
namespace {

// --- bit I/O -------------------------------------------------------------

TEST(BitIo, SingleBitsRoundTrip) {
  BitWriter w;
  const bool bits[] = {true, false, true, true, false, false, true, false,
                       true, true};
  for (const bool b : bits) w.bit(b);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  for (const bool b : bits) EXPECT_EQ(r.bit(), b);
}

TEST(BitIo, MultiBitValues) {
  BitWriter w;
  w.bits(0b101101, 6);
  w.bits(0xffff, 16);
  w.bits(0, 3);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  EXPECT_EQ(r.bits(6), 0b101101u);
  EXPECT_EQ(r.bits(16), 0xffffu);
  EXPECT_EQ(r.bits(3), 0u);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.bit(true);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  r.bits(8);  // padded byte is readable
  EXPECT_THROW(r.bit(), std::out_of_range);
}

// --- Huffman -------------------------------------------------------------

TEST(Huffman, RoundTripSkewedAlphabet) {
  std::vector<std::uint64_t> freq(8, 0);
  freq[0] = 1000;
  freq[1] = 200;
  freq[2] = 50;
  freq[3] = 1;
  const HuffmanCoder coder = HuffmanCoder::from_frequencies(freq);
  BitWriter w;
  const std::vector<std::uint32_t> message = {0, 0, 1, 2, 3, 0, 1, 0};
  for (const auto s : message) coder.encode(s, w);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  for (const auto s : message) EXPECT_EQ(coder.decode(r), s);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freq = {1000, 10, 10, 10};
  const HuffmanCoder coder = HuffmanCoder::from_frequencies(freq);
  EXPECT_LT(coder.code_lengths()[0], coder.code_lengths()[3]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freq = {0, 5, 0};
  const HuffmanCoder coder = HuffmanCoder::from_frequencies(freq);
  BitWriter w;
  coder.encode(1, w);
  coder.encode(1, w);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  EXPECT_EQ(coder.decode(r), 1u);
  EXPECT_EQ(coder.decode(r), 1u);
}

TEST(Huffman, AllZeroFrequenciesThrows) {
  std::vector<std::uint64_t> freq(4, 0);
  EXPECT_THROW(HuffmanCoder::from_frequencies(freq), std::invalid_argument);
}

TEST(Huffman, SerializedTableReproducesCodes) {
  Rng rng(31);
  std::vector<std::uint64_t> freq(257);
  for (auto& f : freq) f = 1 + rng.below(10000);
  const HuffmanCoder coder = HuffmanCoder::from_frequencies(freq);
  const HuffmanCoder copy = HuffmanCoder::from_code_lengths(
      coder.code_lengths());
  BitWriter w;
  for (std::uint32_t s = 0; s < 257; ++s) coder.encode(s, w);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  for (std::uint32_t s = 0; s < 257; ++s) EXPECT_EQ(copy.decode(r), s);
}

TEST(Huffman, RandomRoundTripProperty) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freq(64);
    for (auto& f : freq) f = rng.below(100);  // some zeros
    freq[rng.below(64)] = 1 + rng.below(1000);  // at least one non-zero
    const HuffmanCoder coder = HuffmanCoder::from_frequencies(freq);
    std::vector<std::uint32_t> message;
    for (std::uint32_t s = 0; s < 64; ++s) {
      if (coder.code_lengths()[s] > 0) {
        message.push_back(s);
        message.push_back(s);
      }
    }
    BitWriter w;
    for (const auto s : message) coder.encode(s, w);
    const auto bytes = w.finish();
    BitReader r(std::span(bytes.data(), bytes.size()));
    for (const auto s : message) ASSERT_EQ(coder.decode(r), s);
  }
}

// --- sequence codec --------------------------------------------------------

TEST(SeqCodec, PlainRoundTrip) {
  std::string qual = "IIIIIIIII";
  const auto compressed = compress_sequence("GGTTACCTA", qual);
  EXPECT_EQ(compressed.length, 9u);
  EXPECT_EQ(compressed.packed.size(), 3u);  // ceil(9/4)
  std::string qual2 = qual;
  EXPECT_EQ(decompress_sequence(compressed, qual2), "GGTTACCTA");
  EXPECT_EQ(qual2, "IIIIIIIII");
}

TEST(SeqCodec, PaperExampleWithN) {
  // Paper Fig 4: GGTTNCCTA / CCCB#FFFF -> N escaped to A with sentinel
  // quality; decompression restores N and '#'.
  std::string qual = "CCCB#FFFF";
  const auto compressed = compress_sequence("GGTTNCCTA", qual);
  EXPECT_EQ(qual[4], kEscapeQuality);  // sentinel written in place
  std::string seq = decompress_sequence(compressed, qual);
  EXPECT_EQ(seq, "GGTTNCCTA");
  EXPECT_EQ(qual, "CCCB#FFFF");
}

TEST(SeqCodec, CompressionIsFourToOne) {
  std::string qual(1000, 'F');
  const auto compressed = compress_sequence(std::string(1000, 'C'), qual);
  // ~4x: 1000 bases -> 250 bytes (paper: "improves storage by
  // approximately four times").
  EXPECT_EQ(compressed.packed.size(), 250u);
}

TEST(SeqCodec, LengthMismatchThrows) {
  std::string qual = "II";
  EXPECT_THROW(compress_sequence("ACGT", qual), std::invalid_argument);
}

TEST(SeqCodec, RandomRoundTripProperty) {
  Rng rng(41);
  const char bases[] = {'A', 'C', 'G', 'T', 'N'};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = 1 + rng.below(300);
    std::string seq(len, 'A'), qual(len, 'A');
    for (std::size_t i = 0; i < len; ++i) {
      seq[i] = bases[rng.below(5)];
      qual[i] = static_cast<char>(35 + rng.below(40));
    }
    std::string work_qual = qual;
    const auto compressed = compress_sequence(seq, work_qual);
    const std::string out = decompress_sequence(compressed, work_qual);
    ASSERT_EQ(out, seq);
    // Non-N positions keep their original quality.
    for (std::size_t i = 0; i < len; ++i) {
      if (seq[i] != 'N') {
        ASSERT_EQ(work_qual[i], qual[i]);
      }
    }
  }
}

// --- quality codec -----------------------------------------------------------

TEST(QualCodec, RoundTrip) {
  const std::vector<std::string> quals = {"CCCBFFFF", "IIIIHHGG", "AB"};
  const QualityCodec codec = QualityCodec::train(quals);
  BitWriter w;
  for (const auto& q : quals) codec.encode(q, w);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  for (const auto& q : quals) EXPECT_EQ(codec.decode(r), q);
}

TEST(QualCodec, EmptyStringRoundTrip) {
  const std::vector<std::string> quals = {"ABC"};
  const QualityCodec codec = QualityCodec::train(quals);
  BitWriter w;
  codec.encode("", w);
  codec.encode("ABC", w);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  EXPECT_EQ(codec.decode(r), "");
  EXPECT_EQ(codec.decode(r), "ABC");
}

TEST(QualCodec, TableSerializationRoundTrip) {
  const std::vector<std::string> quals = {"FFFFFFGGFF", "EEEEFFFFGG"};
  const QualityCodec codec = QualityCodec::train(quals);
  const auto table = codec.serialize_table();
  EXPECT_EQ(table.size(), kQualityAlphabet);
  const QualityCodec copy = QualityCodec::from_table(table);
  BitWriter w;
  copy.encode(quals[0], w);
  const auto bytes = w.finish();
  BitReader r(std::span(bytes.data(), bytes.size()));
  EXPECT_EQ(codec.decode(r), quals[0]);
}

TEST(QualCodec, ConcentratedDeltasCompressWell) {
  // Realistic quality strings (small adjacent deltas) should compress to
  // well under 8 bits per character.
  Rng rng(43);
  std::vector<std::string> quals;
  for (int i = 0; i < 200; ++i) {
    std::string q(100, 'F');
    char level = 'F';
    for (auto& c : q) {
      level = static_cast<char>(level + static_cast<int>(rng.below(3)) - 1);
      c = level;
    }
    quals.push_back(std::move(q));
  }
  const QualityCodec codec = QualityCodec::train(quals);
  BitWriter w;
  for (const auto& q : quals) codec.encode(q, w);
  const auto bytes = w.finish();
  const double bits_per_char =
      8.0 * static_cast<double>(bytes.size()) / (200.0 * 100.0);
  EXPECT_LT(bits_per_char, 4.0);
}

// --- record codecs (parameterized over all three serializers) -----------------

class RecordCodecTest : public ::testing::TestWithParam<Codec> {};

std::vector<FastqRecord> sample_fastq(int n) {
  Rng rng(47);
  std::vector<FastqRecord> out;
  const char bases[] = {'A', 'C', 'G', 'T', 'N'};
  for (int i = 0; i < n; ++i) {
    const std::size_t len = 50 + rng.below(60);
    FastqRecord r;
    r.name = "read" + std::to_string(i) + "/1";
    r.sequence.resize(len);
    r.quality.resize(len);
    for (std::size_t j = 0; j < len; ++j) {
      r.sequence[j] = bases[rng.below(20) == 0 ? 4 : rng.below(4)];
      r.quality[j] = static_cast<char>(35 + rng.below(40));
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<SamRecord> sample_sam(int n) {
  Rng rng(53);
  auto fastq = sample_fastq(n);
  std::vector<SamRecord> out;
  for (int i = 0; i < n; ++i) {
    SamRecord r;
    r.qname = fastq[i].name;
    r.flag = static_cast<std::uint16_t>(rng.below(0x800));
    r.contig_id = static_cast<std::int32_t>(rng.below(3));
    r.pos = static_cast<std::int64_t>(rng.below(1000000));
    r.mapq = static_cast<std::uint8_t>(rng.below(61));
    r.cigar = {{CigarOp::kMatch,
                static_cast<std::uint32_t>(fastq[i].sequence.size())}};
    r.mate_contig_id = r.contig_id;
    r.mate_pos = r.pos + 300;
    r.tlen = 400;
    r.sequence = fastq[i].sequence;
    r.quality = fastq[i].quality;
    out.push_back(std::move(r));
  }
  return out;
}

TEST_P(RecordCodecTest, FastqRoundTrip) {
  const auto records = sample_fastq(40);
  const auto bytes = encode_fastq_batch(records, GetParam());
  const auto decoded = decode_fastq_batch(bytes, GetParam());
  EXPECT_EQ(decoded, records);
}

TEST_P(RecordCodecTest, FastqPairRoundTrip) {
  auto flat = sample_fastq(20);
  std::vector<FastqPair> pairs;
  for (std::size_t i = 0; i + 1 < flat.size(); i += 2) {
    pairs.push_back({flat[i], flat[i + 1]});
  }
  const auto bytes = encode_fastq_pair_batch(pairs, GetParam());
  EXPECT_EQ(decode_fastq_pair_batch(bytes, GetParam()), pairs);
}

TEST_P(RecordCodecTest, SamRoundTrip) {
  const auto records = sample_sam(40);
  const auto bytes = encode_sam_batch(records, GetParam());
  EXPECT_EQ(decode_sam_batch(bytes, GetParam()), records);
}

TEST_P(RecordCodecTest, VcfRoundTrip) {
  std::vector<VcfRecord> records = {
      {0, 100, "rs1", "A", "C", 50.0, Genotype::kHet},
      {1, 5000, ".", "AT", "A", 99.5, Genotype::kHomAlt},
      {2, 1, ".", "G", "GTTT", 10.0, Genotype::kHomRef},
  };
  const auto bytes = encode_vcf_batch(records, GetParam());
  EXPECT_EQ(decode_vcf_batch(bytes, GetParam()), records);
}

TEST_P(RecordCodecTest, EmptyBatchRoundTrip) {
  const auto bytes = encode_fastq_batch({}, GetParam());
  EXPECT_TRUE(decode_fastq_batch(bytes, GetParam()).empty());
}

TEST_P(RecordCodecTest, CodecMismatchThrows) {
  const auto bytes = encode_fastq_batch(sample_fastq(2), GetParam());
  const Codec other =
      GetParam() == Codec::kGpf ? Codec::kKryoLike : Codec::kGpf;
  EXPECT_THROW(decode_fastq_batch(bytes, other), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, RecordCodecTest,
                         ::testing::Values(Codec::kJavaLike, Codec::kKryoLike,
                                           Codec::kGpf),
                         [](const auto& info) {
                           return codec_name(info.param);
                         });

TEST(RecordCodecSizes, GpfSmallerThanKryoSmallerThanJava) {
  // The paper's serialization hierarchy: GPF < Kryo << Java.
  const auto records = sample_fastq(200);
  const auto gpf = encode_fastq_batch(records, Codec::kGpf).size();
  const auto kryo = encode_fastq_batch(records, Codec::kKryoLike).size();
  const auto java = encode_fastq_batch(records, Codec::kJavaLike).size();
  EXPECT_LT(gpf, kryo);
  EXPECT_LT(kryo, java);
  // Java's UTF-16 payload alone is ~2x Kryo.
  EXPECT_GT(static_cast<double>(java) / static_cast<double>(kryo), 1.8);
}

TEST(RecordCodecSizes, SamCompressionRateLowerThanFastq) {
  // Paper Table 3: SAM stages compress slightly worse than FASTQ because
  // the extra fields stay uncompressed.
  const auto fastq = sample_fastq(200);
  const auto sam = sample_sam(200);
  const double fastq_ratio =
      static_cast<double>(encode_fastq_batch(fastq, Codec::kKryoLike).size()) /
      static_cast<double>(encode_fastq_batch(fastq, Codec::kGpf).size());
  const double sam_ratio =
      static_cast<double>(encode_sam_batch(sam, Codec::kKryoLike).size()) /
      static_cast<double>(encode_sam_batch(sam, Codec::kGpf).size());
  EXPECT_GT(fastq_ratio, sam_ratio);
  EXPECT_GT(sam_ratio, 1.0);
}

TEST(RecordCodecInto, InPlaceEncodersMatchAllocating) {
  const auto fastq = sample_fastq(64);
  const auto sam = sample_sam(64);
  for (const Codec codec :
       {Codec::kJavaLike, Codec::kKryoLike, Codec::kGpf}) {
    // Start from a dirty, preallocated buffer: the in-place encoders must
    // clear it and produce the exact allocating output.
    std::vector<std::uint8_t> out(333, 0xee);
    encode_fastq_batch_into(fastq, codec, out);
    EXPECT_EQ(out, encode_fastq_batch(fastq, codec)) << codec_name(codec);
    encode_sam_batch_into(sam, codec, out);
    EXPECT_EQ(out, encode_sam_batch(sam, codec)) << codec_name(codec);
  }
}

TEST(LiveSize, AccountsForHeapStrings) {
  FastqRecord small{"n", "AC", "II"};
  FastqRecord big{"n", std::string(1000, 'A'), std::string(1000, 'I')};
  EXPECT_GT(live_size(big), live_size(small) + 1500);
}

// --- cross-level SIMD equivalence -----------------------------------------

/// Dispatch levels the current machine can actually execute.  The scalar
/// path is always present; SSE4/AVX2 only when the CPU supports them.
std::vector<simd::Level> testable_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  const simd::Level top = simd::detect_level();
  if (top >= simd::Level::kSse4) levels.push_back(simd::Level::kSse4);
  if (top >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  return levels;
}

/// Asserts every available level compresses and decompresses `seq`
/// byte-identically to the scalar path (packed payload, rewritten quality,
/// restored sequence and quality).
void expect_levels_agree(const std::string& seq, const std::string& qual) {
  std::string scalar_qual = qual;
  const auto scalar = detail::compress_sequence_at(simd::Level::kScalar, seq,
                                                   scalar_qual);
  for (const simd::Level level : testable_levels()) {
    std::string q = qual;
    const auto got = detail::compress_sequence_at(level, seq, q);
    ASSERT_EQ(got.length, scalar.length) << simd::level_name(level);
    ASSERT_EQ(got.packed, scalar.packed) << simd::level_name(level);
    ASSERT_EQ(q, scalar_qual) << simd::level_name(level);

    std::string dq_scalar = scalar_qual;
    std::string dq = scalar_qual;
    const std::string want = detail::decompress_sequence_at(
        simd::Level::kScalar, scalar, dq_scalar);
    const std::string out = detail::decompress_sequence_at(level, got, dq);
    ASSERT_EQ(out, want) << simd::level_name(level);
    ASSERT_EQ(dq, dq_scalar) << simd::level_name(level);
    // Any special base round-trips as 'N' (the escape is N-restoring).
    std::string expected = seq;
    for (auto& c : expected) {
      if (c != 'A' && c != 'C' && c != 'G' && c != 'T') c = 'N';
    }
    ASSERT_EQ(out, expected) << simd::level_name(level);
  }
}

TEST(SeqCodecSimd, RandomReadsAllLevelsBitIdentical) {
  Rng rng(137);
  const char bases[] = {'A', 'C', 'G', 'T'};
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t len = rng.below(400);
    std::string seq(len, 'A'), qual(len, 'I');
    for (std::size_t i = 0; i < len; ++i) {
      seq[i] = bases[rng.below(4)];
      qual[i] = static_cast<char>(35 + rng.below(40));
    }
    // A quarter of the reads carry N runs (escape fallback blocks).
    if (trial % 4 == 0 && len >= 8) {
      const std::size_t at = rng.below(len - 4);
      const std::size_t run = 1 + rng.below(4);
      for (std::size_t i = at; i < at + run; ++i) seq[i] = 'N';
    }
    expect_levels_agree(seq, qual);
  }
}

TEST(SeqCodecSimd, EdgeLengthsAndSpecialPlacements) {
  // Lengths straddling the 4-base byte, 8-base SWAR and 32-base AVX2
  // strides, with every length % 4 residue.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{31}, std::size_t{32}, std::size_t{33}, std::size_t{63},
        std::size_t{64}, std::size_t{65}}) {
    std::string seq(len, 'A');
    for (std::size_t i = 0; i < len; ++i) seq[i] = "ACGT"[i % 4];
    expect_levels_agree(seq, std::string(len, 'F'));
    if (len == 0) continue;
    // All-special read.
    expect_levels_agree(std::string(len, 'N'), std::string(len, 'F'));
    // Specials pinned to the first, last and stride-boundary positions.
    std::string edges = seq;
    edges[0] = 'N';
    edges[len - 1] = 'X';
    if (len > 8) edges[8] = 'N';
    if (len > 32) edges[32] = 'N';
    expect_levels_agree(edges, std::string(len, 'F'));
  }
}

TEST(SeqCodecSimd, TruncatedPackedThrowsAtEveryLevel) {
  CompressedSequence bad;
  bad.length = 10;
  bad.packed = {0x00};  // needs ceil(10/4) == 3 bytes
  for (const simd::Level level : testable_levels()) {
    std::string qual(10, 'I');
    EXPECT_THROW(detail::decompress_sequence_at(level, bad, qual),
                 std::out_of_range)
        << simd::level_name(level);
  }
}

TEST(QualCodecSimd, MultiSymbolDecodeMatchesScalar) {
  Rng rng(139);
  std::vector<std::string> quals;
  for (int i = 0; i < 64; ++i) {
    const std::size_t len = rng.below(200);
    std::string q(len, 'I');
    int cur = 'I';
    for (auto& c : q) {
      cur += static_cast<int>(rng.below(5)) - 2;
      cur = std::max('#' + 0, std::min('J' + 0, cur));
      c = static_cast<char>(cur);
    }
    quals.push_back(std::move(q));
  }
  quals.emplace_back();  // empty record: EOF is the first symbol
  const QualityCodec codec = QualityCodec::train(quals);
  BitWriter w;
  for (const auto& q : quals) codec.encode(q, w);
  const auto bytes = w.finish();

  BitReader scalar_in(std::span(bytes.data(), bytes.size()));
  BitReader multi_in(std::span(bytes.data(), bytes.size()));
  for (const auto& q : quals) {
    // Any non-scalar level takes the multi-symbol table loop; the flag is
    // dispatch-only (no ISA-specific instructions), so kAvx2 is safe here.
    const std::string scalar = codec.decode_at(simd::Level::kScalar,
                                               scalar_in);
    const std::string multi = codec.decode_at(simd::Level::kAvx2, multi_in);
    ASSERT_EQ(scalar, q);
    ASSERT_EQ(multi, q);
  }
}

TEST(HuffmanMulti, MultiEntriesConsistentWithSingleDecode) {
  // Every multi-table entry must re-trace to the same symbols the
  // single-symbol table yields for that window.
  std::vector<std::uint64_t> freq(kQualityAlphabet, 1);
  freq[128] = 1000;  // skewed: delta 0 dominates, like real quality data
  freq[127] = 300;
  freq[129] = 300;
  const HuffmanCoder coder = HuffmanCoder::from_frequencies(freq);
  for (std::uint32_t w = 0; w < (1u << HuffmanCoder::kTableBits); w += 37) {
    const HuffmanCoder::MultiEntry& e = coder.multi_entry(w);
    std::uint8_t used = 0;
    for (int k = 0; k < e.count; ++k) {
      ASSERT_GT(e.bit_ends[k], used);
      used = e.bit_ends[k];
      ASSERT_LE(used, HuffmanCoder::kTableBits);
    }
  }
}

}  // namespace
}  // namespace gpf
