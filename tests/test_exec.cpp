// Execution-backend tests: PhysicalPlan lowering, and the cross-backend
// golden contract — the same WGS pipeline on the in-process, spilling,
// and distributed backends must produce bit-identical VCF output and
// identical stage structure, under fault injection, a 4 KiB residency
// budget, and a mid-stage worker SIGKILL.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/pipeline.hpp"
#include "core/resource.hpp"
#include "core/wgs_pipeline.hpp"
#include "engine/fault_injector.hpp"
#include "exec/backend_factory.hpp"
#include "exec/distributed_backend.hpp"
#include "exec/inprocess_backend.hpp"
#include "exec/spilling_backend.hpp"
#include "formats/vcf.hpp"
#include "simdata/read_sim.hpp"

namespace gpf {
namespace {

using core::WgsResult;

// --- PhysicalPlan lowering --------------------------------------------------

using IntResource = core::ValueResource<int>;

/// Minimal Process for plan-shape tests: defines its output, nothing else.
class SetterProcess final : public core::Process {
 public:
  SetterProcess(std::string name, std::vector<core::Resource*> inputs,
                IntResource* out, bool wide)
      : Process(std::move(name), std::move(inputs), {out}),
        out_(out),
        wide_(wide) {}

  bool has_wide_dependency() const override { return wide_; }

 private:
  void run(core::PipelineContext&) override { out_->set(1); }

  IntResource* out_;
  bool wide_;
};

TEST(PhysicalPlan, WavesWideFlagsAndDescribe) {
  engine::Engine engine({.worker_threads = 1});
  Reference ref;
  core::Pipeline p("toy", engine, ref);
  auto* a = p.add_resource(IntResource::make_defined("a", 1));
  auto* b = p.add_resource(IntResource::make_undefined("b"));
  auto* c = p.add_resource(IntResource::make_undefined("c"));
  auto* d = p.add_resource(IntResource::make_undefined("d"));
  p.add_process(std::make_unique<SetterProcess>(
      "P1", std::vector<core::Resource*>{a}, b, false));
  p.add_process(std::make_unique<SetterProcess>(
      "P2", std::vector<core::Resource*>{a}, c, true));
  p.add_process(std::make_unique<SetterProcess>(
      "P3", std::vector<core::Resource*>{b, c}, d, false));

  const core::PhysicalPlan plan = p.plan();
  ASSERT_EQ(plan.stages().size(), 3u);
  EXPECT_EQ(plan.stages()[0].wave, 0u);
  EXPECT_EQ(plan.stages()[1].wave, 0u);
  EXPECT_EQ(plan.stages()[2].wave, 1u);
  EXPECT_FALSE(plan.stages()[0].wide);
  EXPECT_TRUE(plan.stages()[1].wide);
  EXPECT_EQ(plan.wave_count(), 2u);
  EXPECT_EQ(plan.wide_stage_count(), 1u);
  EXPECT_EQ(plan.describe(), "P1[w0] P2[w0,wide] P3[w1]");
  EXPECT_EQ(plan.stages()[2].inputs,
            (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(plan.stages()[2].outputs, (std::vector<std::string>{"d"}));
}

TEST(PhysicalPlan, CircularDependencyNamesStuckProcesses) {
  engine::Engine engine({.worker_threads = 1});
  Reference ref;
  core::Pipeline p("cycle", engine, ref);
  auto* x = p.add_resource(IntResource::make_undefined("x"));
  auto* y = p.add_resource(IntResource::make_undefined("y"));
  p.add_process(std::make_unique<SetterProcess>(
      "needs_x", std::vector<core::Resource*>{x}, y, false));
  p.add_process(std::make_unique<SetterProcess>(
      "needs_y", std::vector<core::Resource*>{y}, x, false));
  try {
    p.plan();
    FAIL() << "expected circular-dependency error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("circular dependency"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("needs_x"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("needs_y"), std::string::npos);
  }
}

// --- cross-backend goldens --------------------------------------------------

struct BackendFixture : public ::testing::Test {
  static simdata::Workload& workload() {
    static simdata::Workload w = [] {
      simdata::ReadSimSpec spec;
      spec.coverage = 10.0;
      spec.duplicate_fraction = 0.05;
      spec.seed = 401;
      simdata::VariantSpec vspec;
      vspec.snp_rate = 0.0008;
      vspec.seed = 403;
      return simdata::make_workload(80'000, 2, spec, vspec);
    }();
    return w;
  }

  static core::PipelineConfig config() {
    core::PipelineConfig c;
    c.partition_length = 10'000;
    c.split_threshold = 2'000;
    c.fastq_partitions = 8;
    return c;
  }

  static VcfHeader vcf_header() {
    VcfHeader h;
    for (const auto& c : workload().reference.contigs()) {
      h.contigs.push_back({c.name, static_cast<std::int64_t>(
                                       c.sequence.size())});
    }
    return h;
  }

  struct Golden {
    std::string vcf;
    std::vector<std::string> process_names;
    std::vector<std::string> engine_stage_names;
  };

  /// One in-process run is THE golden; every other backend/chaos variant
  /// must reproduce its VCF text bit for bit.
  static const Golden& golden() {
    static Golden g = [] {
      exec::InProcessBackend backend({.worker_threads = 4});
      const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                           workload().sample.pairs,
                                           workload().truth, config());
      Golden out;
      out.vcf = write_vcf(vcf_header(), r.variants);
      for (const auto& t : r.report.timings) {
        out.process_names.push_back(t.name);
      }
      for (const auto& s : backend.engine().metrics().stages()) {
        out.engine_stage_names.push_back(s.name);
      }
      return out;
    }();
    return g;
  }

  static std::string distributed_worker_binary() { return GPF_WORKER_BIN; }
};

TEST_F(BackendFixture, InProcessReportShape) {
  const Golden& g = golden();
  ASSERT_FALSE(g.vcf.empty());
  ASSERT_FALSE(g.process_names.empty());
  ASSERT_FALSE(g.engine_stage_names.empty());
}

TEST_F(BackendFixture, EngineConstructorPathIsIdenticalToInProcessBackend) {
  engine::Engine engine({.worker_threads = 4});
  const WgsResult r = run_wgs_pipeline(engine, workload().reference,
                                       workload().sample.pairs,
                                       workload().truth, config());
  EXPECT_EQ(r.report.backend, "inprocess");
  EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);
}

TEST_F(BackendFixture, SpillingBackendBitIdenticalAndSpills) {
  exec::SpillingBackendOptions options;
  options.engine = {.worker_threads = 4};
  exec::SpillingBackend backend(options);
  const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                       workload().sample.pairs,
                                       workload().truth, config());
  EXPECT_EQ(r.report.backend, "spill");
  EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);

  // Identical stage structure: same Process sequence, same engine stages.
  std::vector<std::string> process_names;
  for (const auto& t : r.report.timings) process_names.push_back(t.name);
  EXPECT_EQ(process_names, golden().process_names);
  std::vector<std::string> stage_names;
  for (const auto& s : backend.engine().metrics().stages()) {
    stage_names.push_back(s.name);
  }
  EXPECT_EQ(stage_names, golden().engine_stage_names);

  // Every wide boundary's blocks actually went through the chunk store.
  const engine::ShuffleTransportStats stats = backend.transport_stats();
  EXPECT_GT(stats.shuffles, 0u);
  EXPECT_GT(stats.blocks_put, 0u);
  EXPECT_GT(stats.bytes_spilled, 0u);
  EXPECT_EQ(stats.blocks_fetched, stats.blocks_put);

  // The per-Process report attributes the spill traffic somewhere.
  std::uint64_t spilled = 0;
  for (const auto& t : r.report.timings) spilled += t.backend.bytes_spilled;
  EXPECT_EQ(spilled, stats.bytes_spilled);
}

TEST_F(BackendFixture, SpillingBackendCompletesUnderTinyBudget) {
  // 4 KiB is far below any single shuffle's working set: the residency
  // manager must thrash (evict on nearly every fetch) yet the run still
  // completes with bit-identical output — the budget bounds caching, not
  // correctness.
  exec::SpillingBackendOptions options;
  options.engine = {.worker_threads = 4};
  options.store_budget = 4096;
  exec::SpillingBackend backend(options);
  const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                       workload().sample.pairs,
                                       workload().truth, config());
  EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);
  EXPECT_GT(backend.transport_stats().bytes_spilled, 0u);
  EXPECT_GT(backend.chunk_store().residency().stats().evictions, 0u);
}

TEST_F(BackendFixture, AdaptiveSchedulingBitIdenticalOnAllBackends) {
  // adaptive_scheduling only re-tasks element-wise stages; the VCF must
  // match the static golden bit for bit on every backend.
  core::PipelineConfig cfg = config();
  cfg.adaptive_scheduling = true;

  {
    exec::InProcessBackend backend({.worker_threads = 4});
    const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                         workload().sample.pairs,
                                         workload().truth, cfg);
    EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);
    // The plan-scoped scheduler is detached after the run.
    EXPECT_EQ(backend.engine().scheduler(), nullptr);
  }
  {
    exec::SpillingBackendOptions options;
    options.engine = {.worker_threads = 4};
    exec::SpillingBackend backend(options);
    const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                         workload().sample.pairs,
                                         workload().truth, cfg);
    EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);
  }
  {
    exec::DistributedBackendOptions options;
    options.engine = {.worker_threads = 4};
    options.workers = 2;
    options.worker_binary = distributed_worker_binary();
    exec::DistributedBackend backend(options);
    const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                         workload().sample.pairs,
                                         workload().truth, cfg);
    EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);
  }
}

TEST_F(BackendFixture, DistributedBackendBitIdentical) {
  exec::DistributedBackendOptions options;
  options.engine = {.worker_threads = 4};
  options.workers = 2;
  options.worker_binary = distributed_worker_binary();
  exec::DistributedBackend backend(options);
  const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                       workload().sample.pairs,
                                       workload().truth, config());
  EXPECT_EQ(r.report.backend, "distributed");
  EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);

  std::vector<std::string> process_names;
  for (const auto& t : r.report.timings) process_names.push_back(t.name);
  EXPECT_EQ(process_names, golden().process_names);
  std::vector<std::string> stage_names;
  for (const auto& s : backend.engine().metrics().stages()) {
    stage_names.push_back(s.name);
  }
  EXPECT_EQ(stage_names, golden().engine_stage_names);

  const engine::ShuffleTransportStats stats = backend.transport_stats();
  EXPECT_GT(stats.blocks_put, 0u);
  EXPECT_GT(stats.bytes_fetched, 0u);
  EXPECT_EQ(stats.lineage_recoveries, 0u);  // no chaos in this variant
}

TEST_F(BackendFixture, DistributedBackendSurvivesWorkerSigkillMidStage) {
  exec::DistributedBackendOptions options;
  options.engine = {.worker_threads = 4};
  options.workers = 2;
  options.worker_binary = distributed_worker_binary();
  exec::DistributedBackend backend(options);

  // Chaos: SIGKILL the worker that owns the first pushed map output, as
  // soon as a later push proves the stage is mid-flight.  Its blocks die
  // with it; the reduce side must repair from the driver's lineage cache
  // (and any in-flight pushes to it must retry as map recomputes).
  std::atomic<int> pushes{0};
  std::atomic<int> first_owner{-1};
  std::atomic<bool> killed{false};
  backend.set_push_hook([&](std::size_t, int worker) {
    const int n = pushes.fetch_add(1);
    if (n == 0) {
      first_owner.store(worker);
      return;
    }
    const int target = first_owner.load();
    if (target >= 0 && !killed.exchange(true)) {
      backend.worker_pool().kill_worker(target, SIGKILL);
    }
  });

  const WgsResult r = run_wgs_pipeline(backend, workload().reference,
                                       workload().sample.pairs,
                                       workload().truth, config());
  EXPECT_TRUE(killed.load());
  EXPECT_EQ(backend.worker_pool().alive_count(), 1u);
  EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf);
  // The killed owner's blocks were re-pushed from the lineage cache.
  EXPECT_GT(backend.transport_stats().lineage_recoveries, 0u);
}

TEST_F(BackendFixture, AllBackendsBitIdenticalUnderFaultInjection) {
  // The same deterministic chaos on every backend: random task failures
  // plus block corruption on first attempts.  Recovery is lineage
  // recompute from immutable inputs, so output must not change.
  const auto rules = std::vector<engine::FaultRule>{
      engine::FaultRule::fail_random("", 0.05, 1),
      engine::FaultRule::corrupt_block("", engine::kAnyTask, engine::kAnyTask,
                                       1),
  };

  for (const auto& kind : {exec::BackendKind::kInProcess,
                           exec::BackendKind::kSpill,
                           exec::BackendKind::kDistributed}) {
    exec::BackendSpec spec;
    spec.kind = kind;
    spec.engine = {.worker_threads = 4};
    spec.workers = 2;
    spec.worker_binary = distributed_worker_binary();
    const std::unique_ptr<core::ExecutionBackend> backend =
        exec::make_backend(spec);
    backend->engine().set_fault_injector(
        std::make_shared<engine::FaultInjector>(1789, rules));
    const WgsResult r = run_wgs_pipeline(*backend, workload().reference,
                                         workload().sample.pairs,
                                         workload().truth, config());
    EXPECT_EQ(write_vcf(vcf_header(), r.variants), golden().vcf)
        << "backend: " << backend->name();
    EXPECT_GT(backend->engine().metrics().total_injected_faults(), 0u)
        << "backend: " << backend->name();
  }
}

}  // namespace
}  // namespace gpf
