// Unit tests for src/formats: CIGAR, FASTA, FASTQ, SAM, VCF.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "formats/cigar.hpp"
#include "formats/fasta.hpp"
#include "formats/bed.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/scan.hpp"
#include "formats/vcf.hpp"

namespace gpf {
namespace {

/// The std::invalid_argument message `fn` throws, or "" if it doesn't.
template <typename Fn>
std::string capture_error(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

struct MalformedCase {
  const char* label;
  const char* text;
  const char* message;
};

// --- CIGAR -------------------------------------------------------------

TEST(Cigar, ParseAndToString) {
  const Cigar c = parse_cigar("76M2I20M5S");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].op, CigarOp::kMatch);
  EXPECT_EQ(c[0].length, 76u);
  EXPECT_EQ(c[1].op, CigarOp::kInsertion);
  EXPECT_EQ(cigar_to_string(c), "76M2I20M5S");
}

TEST(Cigar, StarIsEmpty) {
  EXPECT_TRUE(parse_cigar("*").empty());
  EXPECT_EQ(cigar_to_string({}), "*");
}

TEST(Cigar, Lengths) {
  const Cigar c = parse_cigar("10S50M3D40M2I5H");
  EXPECT_EQ(cigar_read_length(c), 10u + 50 + 40 + 2);
  EXPECT_EQ(cigar_reference_length(c), 50u + 3 + 40);
}

TEST(Cigar, RejectsMalformed) {
  EXPECT_THROW(parse_cigar("M10"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("10"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("10Q"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("0M"), std::invalid_argument);
}

TEST(Cigar, RoundTripProperty) {
  Rng rng(23);
  const CigarOp ops[] = {CigarOp::kMatch, CigarOp::kInsertion,
                         CigarOp::kDeletion, CigarOp::kSoftClip,
                         CigarOp::kSkip};
  for (int trial = 0; trial < 100; ++trial) {
    Cigar c;
    const int n = 1 + static_cast<int>(rng.below(8));
    CigarOp prev = CigarOp::kPad;
    for (int i = 0; i < n; ++i) {
      CigarOp op;
      do {
        op = ops[rng.below(5)];
      } while (op == prev);  // adjacent same-op runs merge in text form
      prev = op;
      c.push_back({op, static_cast<std::uint32_t>(1 + rng.below(200))});
    }
    EXPECT_EQ(parse_cigar(cigar_to_string(c)), c);
  }
}

// --- FASTA -------------------------------------------------------------

TEST(Fasta, ParseBasic) {
  const Reference ref = parse_fasta(">chr1 description\nACGT\nacgt\n>chr2\nNNRY\n");
  ASSERT_EQ(ref.contig_count(), 2u);
  EXPECT_EQ(ref.contig(0).name, "chr1");
  EXPECT_EQ(ref.contig(0).sequence, "ACGTACGT");
  // Ambiguity codes become N.
  EXPECT_EQ(ref.contig(1).sequence, "NNNN");
  EXPECT_EQ(ref.total_length(), 12u);
}

TEST(Fasta, FindContig) {
  const Reference ref = parse_fasta(">a\nAC\n>b\nGT\n");
  EXPECT_EQ(ref.find_contig("b").value(), 1);
  EXPECT_FALSE(ref.find_contig("c").has_value());
}

TEST(Fasta, SliceClampsBounds) {
  const Reference ref = parse_fasta(">a\nACGTACGT\n");
  EXPECT_EQ(ref.slice(0, 2, 3), "GTA");
  EXPECT_EQ(ref.slice(0, -2, 4), "AC");    // clipped at the left edge
  EXPECT_EQ(ref.slice(0, 6, 100), "GT");   // clipped at the right edge
  EXPECT_EQ(ref.slice(0, 100, 5), "");     // fully out of range
}

TEST(Fasta, WriteParseRoundTrip) {
  const Reference ref = parse_fasta(">chrA\n" + std::string(200, 'A') + "\n");
  const Reference again = parse_fasta(write_fasta(ref));
  EXPECT_EQ(again.contig(0).sequence, ref.contig(0).sequence);
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  EXPECT_THROW(parse_fasta("ACGT\n"), std::invalid_argument);
}

// --- FASTQ -------------------------------------------------------------

TEST(Fastq, ParseAndWrite) {
  const std::string text = "@read1\nACGT\n+\nIIII\n@read2\nTT\n+\nAB\n";
  const auto records = parse_fastq(text);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "read1");
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
  EXPECT_EQ(write_fastq(records), text);
}

TEST(Fastq, LengthMismatchThrows) {
  EXPECT_THROW(parse_fastq("@r\nACGT\n+\nII\n"), std::invalid_argument);
}

TEST(Fastq, MissingSeparatorThrows) {
  EXPECT_THROW(parse_fastq("@r\nACGT\nIIII\nACGT\n"), std::invalid_argument);
}

TEST(Fastq, ZipPairs) {
  auto pairs = zip_pairs({{"a/1", "AC", "II"}}, {{"a/2", "GT", "II"}});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first.name, "a/1");
  EXPECT_EQ(pairs[0].second.name, "a/2");
  EXPECT_THROW(zip_pairs({{"a", "A", "I"}}, {}), std::invalid_argument);
}

TEST(Fastq, MalformedCorpusBothPathsAgree) {
  static constexpr MalformedCase kCases[] = {
      {"truncated record", "@r\nACGT\n+\n", "FASTQ: truncated record"},
      {"truncated, no newline", "@r\nACGT", "FASTQ: truncated record"},
      {"header without @", "r1\nACGT\n+\nIIII\n", "FASTQ: expected '@' header"},
      {"missing separator", "@r\nACGT\nIIII\nACGT\n",
       "FASTQ: expected '+' separator"},
      {"separator repeats wrong name", "@r\nAC\n+x\nII\n",
       "FASTQ: '+' line repeats a different header"},
      {"length mismatch", "@r\nACGT\n+\nII\n",
       "FASTQ: sequence/quality length mismatch"},
      {"blank line between records", "@a\nA\n+\nI\n\n@b\nC\n+\nI\n",
       "FASTQ: blank line between records"},
      {"blank line then trailing garbage", "@a\nA\n+\nI\n\n\nC\n",
       "FASTQ: blank line between records"},
      {"blank seq with separator shifted", "@a\nA\n\nI\n",
       "FASTQ: expected '+' separator"},
      {"CR-only line endings", "@a\rAC\r+\rII", "FASTQ: truncated record"},
      {"non-ASCII header", "@a\x01\nAC\n+\nII\n",
       "FASTQ: non-ASCII byte in header"},
      {"non-ASCII sequence", "@a\nA\x80\n+\nII\n",
       "FASTQ: non-ASCII byte in sequence"},
      {"quality below Phred+33", "@a\nAC\n+\nI \n",
       "FASTQ: quality character out of range"},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(capture_error([&] { parse_fastq(c.text); }), c.message)
        << c.label;
    EXPECT_EQ(capture_error([&] { detail::parse_fastq_reference(c.text); }),
              c.message)
        << c.label << " (reference)";
    EXPECT_EQ(capture_error([&] { scan_fastq(c.text); }), c.message)
        << c.label << " (scan)";
  }
}

TEST(Fastq, AcceptsBenignShapeVariants) {
  // CRLF endings.
  const auto crlf = parse_fastq("@a x\r\nAC\r\n+\r\nII\r\n");
  ASSERT_EQ(crlf.size(), 1u);
  EXPECT_EQ(crlf[0].name, "a x");
  EXPECT_EQ(crlf[0].sequence, "AC");
  // Missing final newline.
  EXPECT_EQ(parse_fastq("@a\nAC\n+\nII").size(), 1u);
  // Trailing blank lines.
  EXPECT_EQ(parse_fastq("@a\nAC\n+\nII\n\n\n").size(), 1u);
  // '+' line repeating the full header.
  EXPECT_EQ(parse_fastq("@a desc\nAC\n+a desc\nII\n").size(), 1u);
  // Zero-length read (write_fastq emits this for empty sequences).
  const auto empty = parse_fastq("@e\n\n+\n\n");
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].sequence, "");
  // Empty input.
  EXPECT_TRUE(parse_fastq("").empty());
  EXPECT_TRUE(parse_fastq("\n\n").empty());
}

TEST(Fastq, ScanStatsMatchParse) {
  const std::string text = "@a\nACGT\n+\nIIII\n@b\nAC\n+\nII\n";
  const FastqScanStats stats = scan_fastq(text);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.bases, 6u);
  EXPECT_EQ(stats, detail::scan_fastq_reference(text));
}

TEST(Fastq, ParallelDriverMatchesReferenceOnLargeInput) {
  // Big enough to split into several chunks inside LineIndex (min chunk
  // 256 KiB) and long enough lines to cross 64-byte blocks.
  Rng rng(4242);
  std::vector<FastqRecord> records;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t len = 40 + rng.below(200);
    std::string seq(len, 'A');
    for (auto& c : seq) c = "ACGT"[rng.below(4)];
    records.push_back({"read" + std::to_string(i), seq,
                       std::string(len,
                                   static_cast<char>('!' + rng.below(70)))});
  }
  const std::string text = write_fastq(records);
  ASSERT_GT(text.size(), std::size_t{1} << 19);
  // Forced-parallel parse (threshold 1) agrees with the reference...
  const auto fast =
      detail::parse_fastq_at(simd::active_level(), text, /*threshold=*/1);
  EXPECT_EQ(fast, records);
  EXPECT_EQ(detail::parse_fastq_reference(text), records);
  // ...including when the input ends with an error past many chunks.
  std::string bad = text + "@tail\nACGT\n+\nII\n";
  EXPECT_EQ(capture_error([&] {
              detail::parse_fastq_at(simd::active_level(), bad, 1);
            }),
            "FASTQ: sequence/quality length mismatch");
}

TEST(ScanLayer, LineIndexParallelMatchesSequential) {
  Rng rng(99);
  std::string text;
  while (text.size() < (std::size_t{1} << 20) + 12345) {
    text.append(std::string(rng.below(150), 'x'));
    if (rng.below(6) != 0) text.push_back('\n');
    else text.append("\r\n");
  }
  const simd::Level level = simd::active_level();
  const fmt::LineIndex seq(level, text, /*parallel_threshold=*/text.size() + 1);
  const fmt::LineIndex par(level, text, /*parallel_threshold=*/1);
  ASSERT_EQ(seq.line_count(), par.line_count());
  for (std::size_t i = 0; i < seq.line_count(); ++i) {
    ASSERT_EQ(seq.line(i), par.line(i)) << i;
    ASSERT_EQ(seq.line_start(i), par.line_start(i)) << i;
  }
}

TEST(ScanLayer, RejectsOversizedInput) {
  // A fake string_view over a null pointer with a 4GiB+1 size never gets
  // dereferenced: the size gate throws first.
  const std::string_view huge(static_cast<const char*>(nullptr),
                              fmt::kMaxTextBytes + 1);
  EXPECT_THROW(fmt::LineIndex(simd::Level::kScalar, huge),
               std::invalid_argument);
}

// --- SAM ---------------------------------------------------------------

SamHeader two_contig_header() {
  SamHeader h;
  h.contigs = {{"chr1", 1000}, {"chr2", 500}};
  return h;
}

TEST(Sam, WriteParseRoundTrip) {
  SamHeader header = two_contig_header();
  SamRecord rec;
  rec.qname = "r1";
  rec.flag = SamFlags::kPaired | SamFlags::kFirstOfPair | SamFlags::kReverse;
  rec.contig_id = 1;
  rec.pos = 99;
  rec.mapq = 60;
  rec.cigar = parse_cigar("5M");
  rec.mate_contig_id = 1;
  rec.mate_pos = 200;
  rec.tlen = 106;
  rec.sequence = "ACGTA";
  rec.quality = "IIIII";

  const std::string text = write_sam(header, {rec});
  const SamFile parsed = parse_sam(text);
  EXPECT_EQ(parsed.header, header);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0], rec);
}

TEST(Sam, UnmappedRoundTrip) {
  SamRecord rec;
  rec.qname = "u";
  rec.flag = SamFlags::kUnmapped;
  rec.sequence = "AC";
  rec.quality = "II";
  const SamFile parsed = parse_sam(write_sam(two_contig_header(), {rec}));
  EXPECT_EQ(parsed.records[0].contig_id, -1);
  EXPECT_TRUE(parsed.records[0].is_unmapped());
}

TEST(Sam, CoordinateLessOrdersProperly) {
  SamRecord a, b, unmapped;
  a.contig_id = 0;
  a.pos = 10;
  b.contig_id = 0;
  b.pos = 20;
  unmapped.flag = SamFlags::kUnmapped;
  EXPECT_TRUE(coordinate_less(a, b));
  EXPECT_FALSE(coordinate_less(b, a));
  EXPECT_TRUE(coordinate_less(b, unmapped));
  EXPECT_FALSE(coordinate_less(unmapped, a));
}

TEST(Sam, UnclippedStartForward) {
  SamRecord rec;
  rec.contig_id = 0;
  rec.pos = 100;
  rec.cigar = parse_cigar("5S90M5S");
  EXPECT_EQ(rec.unclipped_start(), 95);
}

TEST(Sam, UnclippedStartReverse) {
  SamRecord rec;
  rec.contig_id = 0;
  rec.pos = 100;
  rec.flag = SamFlags::kReverse;
  rec.cigar = parse_cigar("90M10S");
  // end_pos = 190; plus trailing clip 10 -> unclipped end at 199.
  EXPECT_EQ(rec.unclipped_start(), 199);
}

TEST(Sam, EndPos) {
  SamRecord rec;
  rec.pos = 10;
  rec.cigar = parse_cigar("10M5D10M");
  EXPECT_EQ(rec.end_pos(), 35);
}

TEST(Sam, MalformedCorpusBothPathsAgree) {
  const std::string header = "@SQ\tSN:chr1\tLN:1000\n";
  static constexpr MalformedCase kCases[] = {
      {"short record", "r\t0\t*\t0\t0\t*\t*\t0\t0\tAC\n",
       "SAM: record with <11 fields"},
      {"bad flag", "r\tx\t*\t1\t0\t*\t*\t0\t0\tAC\tII\n",
       "SAM: bad integer field: x"},
      {"unknown contig", "r\t0\tchrX\t1\t0\t*\t*\t0\t0\tAC\tII\n",
       "SAM: unknown contig chrX"},
      {"bad cigar", "r\t0\tchr1\t1\t0\tx\t*\t0\t0\tAC\tII\n",
       "CIGAR op without length"},
      {"non-ASCII qname", "r\x80\t0\t*\t1\t0\t*\t*\t0\t0\tAC\tII\n",
       "SAM: non-ASCII byte in QNAME"},
      {"non-ASCII sequence", "r\t0\t*\t1\t0\t*\t*\t0\t0\tA\x02\tII\n",
       "SAM: non-ASCII byte in SEQ"},
      {"non-ASCII quality", "r\t0\t*\t1\t0\t*\t*\t0\t0\tAC\tI\x9f\n",
       "SAM: non-ASCII byte in QUAL"},
      {"bad @SQ length", "@SQ\tSN:chr1\tLN:12x\n",
       "SAM: bad integer field: 12x"},
  };
  for (const auto& c : kCases) {
    const std::string text = header + c.text;
    EXPECT_EQ(capture_error([&] { parse_sam(text); }), c.message) << c.label;
    EXPECT_EQ(capture_error([&] { detail::parse_sam_reference(text); }),
              c.message)
        << c.label << " (reference)";
  }
}

TEST(Sam, AcceptsBenignShapeVariants) {
  // CRLF, blank interior lines, and a missing final newline are all fine.
  const std::string text =
      "@SQ\tSN:chr1\tLN:1000\r\n\r\n"
      "r1\t0\tchr1\t10\t60\t2M\t*\t0\t0\tAC\tII\n\n"
      "r2\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*";
  const SamFile parsed = parse_sam(text);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0].qname, "r1");
  EXPECT_EQ(parsed.records[0].pos, 9);
  EXPECT_EQ(parsed.records[1].contig_id, -1);
  EXPECT_EQ(parsed, detail::parse_sam_reference(text));
}

TEST(Sam, LateHeaderLineFallsBackToReferenceSemantics) {
  // An @SQ line *after* a record changes which contigs later records can
  // resolve; the fast path must defer to the sequential reference.
  const std::string text =
      "@SQ\tSN:chr1\tLN:1000\n"
      "r1\t0\tchr1\t10\t60\t2M\t*\t0\t0\tAC\tII\n"
      "@SQ\tSN:chr2\tLN:500\n"
      "r2\t0\tchr2\t20\t60\t2M\t*\t0\t0\tGG\tII\n";
  const SamFile parsed = parse_sam(text);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[1].contig_id, 1);
  EXPECT_EQ(parsed, detail::parse_sam_reference(text));
}

// --- VCF ---------------------------------------------------------------

TEST(Vcf, WriteParseRoundTrip) {
  VcfHeader header;
  header.contigs = {{"chr1", 1000}};
  header.sample_name = "NA12878";
  VcfRecord v;
  v.contig_id = 0;
  v.pos = 41;
  v.ref = "A";
  v.alt = "ACGT";
  v.qual = 55.25;
  v.genotype = Genotype::kHet;

  const VcfFile parsed = parse_vcf(write_vcf(header, {v}));
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].pos, 41);
  EXPECT_EQ(parsed.records[0].ref, "A");
  EXPECT_EQ(parsed.records[0].alt, "ACGT");
  EXPECT_NEAR(parsed.records[0].qual, 55.25, 0.01);
  EXPECT_EQ(parsed.records[0].genotype, Genotype::kHet);
  EXPECT_EQ(parsed.header.sample_name, "NA12878");
}

TEST(Vcf, VariantClassification) {
  VcfRecord snp{0, 1, ".", "A", "C", 0, Genotype::kHet};
  VcfRecord ins{0, 1, ".", "A", "ACC", 0, Genotype::kHet};
  VcfRecord del{0, 1, ".", "ACC", "A", 0, Genotype::kHet};
  EXPECT_TRUE(snp.is_snp());
  EXPECT_TRUE(ins.is_insertion());
  EXPECT_TRUE(del.is_deletion());
}

TEST(Vcf, MultiAllelicRejected) {
  VcfHeader header;
  header.contigs = {{"chr1", 1000}};
  const std::string text =
      "##contig=<ID=chr1,length=1000>\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n"
      "chr1\t5\t.\tA\tC,G\t10\tPASS\t.\n";
  EXPECT_THROW(parse_vcf(text), std::invalid_argument);
}

TEST(Vcf, SortOrder) {
  VcfRecord a{0, 5, ".", "A", "C", 0, Genotype::kHet};
  VcfRecord b{0, 5, ".", "A", "G", 0, Genotype::kHet};
  VcfRecord c{1, 1, ".", "A", "C", 0, Genotype::kHet};
  EXPECT_TRUE(vcf_less(a, b));
  EXPECT_TRUE(vcf_less(b, c));
}

TEST(Vcf, MalformedCorpusBothPathsAgree) {
  static constexpr MalformedCase kCases[] = {
      {"short record", "c1\t5\t.\tA\n", "VCF: short record"},
      {"bad POS", "c1\tx5\t.\tA\tC\t10\tPASS\t.\n", "VCF: bad POS"},
      {"bad QUAL", "c1\t5\t.\tA\tC\tq\tPASS\t.\n", "VCF: bad QUAL"},
      {"multi-allelic", "c1\t5\t.\tA\tC,G\t10\tPASS\t.\n",
       "VCF: multi-allelic sites unsupported"},
      {"non-ASCII REF", "c1\t5\t.\tA\x7f\tC\t10\tPASS\t.\n",
       "VCF: non-ASCII byte in REF"},
      {"non-ASCII ALT", "c1\t5\t.\tA\tC\x04\t10\tPASS\t.\n",
       "VCF: non-ASCII byte in ALT"},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(capture_error([&] { parse_vcf(c.text); }), c.message) << c.label;
    EXPECT_EQ(capture_error([&] { detail::parse_vcf_reference(c.text); }),
              c.message)
        << c.label << " (reference)";
  }
}

TEST(Vcf, AcceptsBenignShapeVariants) {
  // "." QUAL, CRLF, blank lines, missing final newline, and contigs
  // synthesized in order of appearance.
  const std::string text =
      "##fileformat=VCFv4.2\r\n\r\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\r\n"
      "b\t5\t.\tA\tC\t.\tPASS\t.\n"
      "a\t7\t.\tG\tT\t12.5\tPASS\t.";
  const VcfFile parsed = parse_vcf(text);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.header.contigs[0].name, "b");
  EXPECT_EQ(parsed.header.contigs[1].name, "a");
  EXPECT_EQ(parsed.records[0].contig_id, 0);
  EXPECT_EQ(parsed.records[0].qual, 0.0);
  EXPECT_EQ(parsed.records[1].contig_id, 1);
  EXPECT_NEAR(parsed.records[1].qual, 12.5, 1e-9);
  EXPECT_EQ(parsed, detail::parse_vcf_reference(text));
}

TEST(Vcf, LateMetaLineFallsBackToReferenceSemantics) {
  const std::string text =
      "##contig=<ID=c1,length=100>\n"
      "c1\t5\t.\tA\tC\t10\tPASS\t.\n"
      "##contig=<ID=c2,length=200>\n"
      "c2\t7\t.\tG\tT\t10\tPASS\t.\n";
  const VcfFile parsed = parse_vcf(text);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[1].contig_id, 1);
  EXPECT_EQ(parsed, detail::parse_vcf_reference(text));
}


// --- BED ----------------------------------------------------------------

TEST(Bed, ParseAndWrite) {
  const SamHeader header = two_contig_header();
  const std::string text =
      "# comment\ntrack name=x\nchr1\t10\t50\texon1\nchr2\t0\t100\n";
  const auto intervals = parse_bed(text, header);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].contig_id, 0);
  EXPECT_EQ(intervals[0].start, 10);
  EXPECT_EQ(intervals[0].end, 50);
  EXPECT_EQ(intervals[0].name, "exon1");
  const std::string round = write_bed(intervals, header);
  EXPECT_EQ(parse_bed(round, header), intervals);
}

TEST(Bed, UnknownContigThrows) {
  EXPECT_THROW(parse_bed("chrX\t0\t10\n", two_contig_header()),
               std::invalid_argument);
}

TEST(Bed, ShortLineThrows) {
  EXPECT_THROW(parse_bed("chr1\t0\n", two_contig_header()),
               std::invalid_argument);
}

TEST(IntervalSet, MergesOverlapsAndSorts) {
  IntervalSet set(std::vector<BedInterval>{{0, 50, 80, ""},
                                           {0, 10, 30, ""},
                                           {0, 25, 55, ""},
                                           {1, 5, 10, ""}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0].start, 10);
  EXPECT_EQ(set.intervals()[0].end, 80);
  EXPECT_EQ(set.total_length(), 70 + 5);
}

TEST(IntervalSet, OverlapQueries) {
  IntervalSet set(std::vector<BedInterval>{{0, 100, 200, ""},
                                           {0, 300, 400, ""},
                                           {2, 0, 50, ""}});
  EXPECT_TRUE(set.overlaps(0, 150, 160));
  EXPECT_TRUE(set.overlaps(0, 90, 101));   // touches the left edge
  EXPECT_FALSE(set.overlaps(0, 200, 300));  // gap between intervals
  EXPECT_TRUE(set.overlaps(0, 199, 305));   // spans the gap
  EXPECT_FALSE(set.overlaps(1, 0, 1000));   // wrong contig
  EXPECT_TRUE(set.contains(2, 0));
  EXPECT_FALSE(set.contains(2, 50));        // end is exclusive
  EXPECT_FALSE(set.overlaps(0, 150, 150));  // empty query
}

TEST(IntervalSet, EmptyAndInvertedIntervalsDropped) {
  IntervalSet set(std::vector<BedInterval>{{0, 10, 10, ""},
                                           {0, 20, 15, ""}});
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace gpf
