// Unit tests for src/formats: CIGAR, FASTA, FASTQ, SAM, VCF.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "formats/cigar.hpp"
#include "formats/fasta.hpp"
#include "formats/bed.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf {
namespace {

// --- CIGAR -------------------------------------------------------------

TEST(Cigar, ParseAndToString) {
  const Cigar c = parse_cigar("76M2I20M5S");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].op, CigarOp::kMatch);
  EXPECT_EQ(c[0].length, 76u);
  EXPECT_EQ(c[1].op, CigarOp::kInsertion);
  EXPECT_EQ(cigar_to_string(c), "76M2I20M5S");
}

TEST(Cigar, StarIsEmpty) {
  EXPECT_TRUE(parse_cigar("*").empty());
  EXPECT_EQ(cigar_to_string({}), "*");
}

TEST(Cigar, Lengths) {
  const Cigar c = parse_cigar("10S50M3D40M2I5H");
  EXPECT_EQ(cigar_read_length(c), 10u + 50 + 40 + 2);
  EXPECT_EQ(cigar_reference_length(c), 50u + 3 + 40);
}

TEST(Cigar, RejectsMalformed) {
  EXPECT_THROW(parse_cigar("M10"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("10"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("10Q"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("0M"), std::invalid_argument);
}

TEST(Cigar, RoundTripProperty) {
  Rng rng(23);
  const CigarOp ops[] = {CigarOp::kMatch, CigarOp::kInsertion,
                         CigarOp::kDeletion, CigarOp::kSoftClip,
                         CigarOp::kSkip};
  for (int trial = 0; trial < 100; ++trial) {
    Cigar c;
    const int n = 1 + static_cast<int>(rng.below(8));
    CigarOp prev = CigarOp::kPad;
    for (int i = 0; i < n; ++i) {
      CigarOp op;
      do {
        op = ops[rng.below(5)];
      } while (op == prev);  // adjacent same-op runs merge in text form
      prev = op;
      c.push_back({op, static_cast<std::uint32_t>(1 + rng.below(200))});
    }
    EXPECT_EQ(parse_cigar(cigar_to_string(c)), c);
  }
}

// --- FASTA -------------------------------------------------------------

TEST(Fasta, ParseBasic) {
  const Reference ref = parse_fasta(">chr1 description\nACGT\nacgt\n>chr2\nNNRY\n");
  ASSERT_EQ(ref.contig_count(), 2u);
  EXPECT_EQ(ref.contig(0).name, "chr1");
  EXPECT_EQ(ref.contig(0).sequence, "ACGTACGT");
  // Ambiguity codes become N.
  EXPECT_EQ(ref.contig(1).sequence, "NNNN");
  EXPECT_EQ(ref.total_length(), 12u);
}

TEST(Fasta, FindContig) {
  const Reference ref = parse_fasta(">a\nAC\n>b\nGT\n");
  EXPECT_EQ(ref.find_contig("b").value(), 1);
  EXPECT_FALSE(ref.find_contig("c").has_value());
}

TEST(Fasta, SliceClampsBounds) {
  const Reference ref = parse_fasta(">a\nACGTACGT\n");
  EXPECT_EQ(ref.slice(0, 2, 3), "GTA");
  EXPECT_EQ(ref.slice(0, -2, 4), "AC");    // clipped at the left edge
  EXPECT_EQ(ref.slice(0, 6, 100), "GT");   // clipped at the right edge
  EXPECT_EQ(ref.slice(0, 100, 5), "");     // fully out of range
}

TEST(Fasta, WriteParseRoundTrip) {
  const Reference ref = parse_fasta(">chrA\n" + std::string(200, 'A') + "\n");
  const Reference again = parse_fasta(write_fasta(ref));
  EXPECT_EQ(again.contig(0).sequence, ref.contig(0).sequence);
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  EXPECT_THROW(parse_fasta("ACGT\n"), std::invalid_argument);
}

// --- FASTQ -------------------------------------------------------------

TEST(Fastq, ParseAndWrite) {
  const std::string text = "@read1\nACGT\n+\nIIII\n@read2\nTT\n+\nAB\n";
  const auto records = parse_fastq(text);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "read1");
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
  EXPECT_EQ(write_fastq(records), text);
}

TEST(Fastq, LengthMismatchThrows) {
  EXPECT_THROW(parse_fastq("@r\nACGT\n+\nII\n"), std::invalid_argument);
}

TEST(Fastq, MissingSeparatorThrows) {
  EXPECT_THROW(parse_fastq("@r\nACGT\nIIII\nACGT\n"), std::invalid_argument);
}

TEST(Fastq, ZipPairs) {
  auto pairs = zip_pairs({{"a/1", "AC", "II"}}, {{"a/2", "GT", "II"}});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first.name, "a/1");
  EXPECT_EQ(pairs[0].second.name, "a/2");
  EXPECT_THROW(zip_pairs({{"a", "A", "I"}}, {}), std::invalid_argument);
}

// --- SAM ---------------------------------------------------------------

SamHeader two_contig_header() {
  SamHeader h;
  h.contigs = {{"chr1", 1000}, {"chr2", 500}};
  return h;
}

TEST(Sam, WriteParseRoundTrip) {
  SamHeader header = two_contig_header();
  SamRecord rec;
  rec.qname = "r1";
  rec.flag = SamFlags::kPaired | SamFlags::kFirstOfPair | SamFlags::kReverse;
  rec.contig_id = 1;
  rec.pos = 99;
  rec.mapq = 60;
  rec.cigar = parse_cigar("5M");
  rec.mate_contig_id = 1;
  rec.mate_pos = 200;
  rec.tlen = 106;
  rec.sequence = "ACGTA";
  rec.quality = "IIIII";

  const std::string text = write_sam(header, {rec});
  const SamFile parsed = parse_sam(text);
  EXPECT_EQ(parsed.header, header);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0], rec);
}

TEST(Sam, UnmappedRoundTrip) {
  SamRecord rec;
  rec.qname = "u";
  rec.flag = SamFlags::kUnmapped;
  rec.sequence = "AC";
  rec.quality = "II";
  const SamFile parsed = parse_sam(write_sam(two_contig_header(), {rec}));
  EXPECT_EQ(parsed.records[0].contig_id, -1);
  EXPECT_TRUE(parsed.records[0].is_unmapped());
}

TEST(Sam, CoordinateLessOrdersProperly) {
  SamRecord a, b, unmapped;
  a.contig_id = 0;
  a.pos = 10;
  b.contig_id = 0;
  b.pos = 20;
  unmapped.flag = SamFlags::kUnmapped;
  EXPECT_TRUE(coordinate_less(a, b));
  EXPECT_FALSE(coordinate_less(b, a));
  EXPECT_TRUE(coordinate_less(b, unmapped));
  EXPECT_FALSE(coordinate_less(unmapped, a));
}

TEST(Sam, UnclippedStartForward) {
  SamRecord rec;
  rec.contig_id = 0;
  rec.pos = 100;
  rec.cigar = parse_cigar("5S90M5S");
  EXPECT_EQ(rec.unclipped_start(), 95);
}

TEST(Sam, UnclippedStartReverse) {
  SamRecord rec;
  rec.contig_id = 0;
  rec.pos = 100;
  rec.flag = SamFlags::kReverse;
  rec.cigar = parse_cigar("90M10S");
  // end_pos = 190; plus trailing clip 10 -> unclipped end at 199.
  EXPECT_EQ(rec.unclipped_start(), 199);
}

TEST(Sam, EndPos) {
  SamRecord rec;
  rec.pos = 10;
  rec.cigar = parse_cigar("10M5D10M");
  EXPECT_EQ(rec.end_pos(), 35);
}

// --- VCF ---------------------------------------------------------------

TEST(Vcf, WriteParseRoundTrip) {
  VcfHeader header;
  header.contigs = {{"chr1", 1000}};
  header.sample_name = "NA12878";
  VcfRecord v;
  v.contig_id = 0;
  v.pos = 41;
  v.ref = "A";
  v.alt = "ACGT";
  v.qual = 55.25;
  v.genotype = Genotype::kHet;

  const VcfFile parsed = parse_vcf(write_vcf(header, {v}));
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].pos, 41);
  EXPECT_EQ(parsed.records[0].ref, "A");
  EXPECT_EQ(parsed.records[0].alt, "ACGT");
  EXPECT_NEAR(parsed.records[0].qual, 55.25, 0.01);
  EXPECT_EQ(parsed.records[0].genotype, Genotype::kHet);
  EXPECT_EQ(parsed.header.sample_name, "NA12878");
}

TEST(Vcf, VariantClassification) {
  VcfRecord snp{0, 1, ".", "A", "C", 0, Genotype::kHet};
  VcfRecord ins{0, 1, ".", "A", "ACC", 0, Genotype::kHet};
  VcfRecord del{0, 1, ".", "ACC", "A", 0, Genotype::kHet};
  EXPECT_TRUE(snp.is_snp());
  EXPECT_TRUE(ins.is_insertion());
  EXPECT_TRUE(del.is_deletion());
}

TEST(Vcf, MultiAllelicRejected) {
  VcfHeader header;
  header.contigs = {{"chr1", 1000}};
  const std::string text =
      "##contig=<ID=chr1,length=1000>\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n"
      "chr1\t5\t.\tA\tC,G\t10\tPASS\t.\n";
  EXPECT_THROW(parse_vcf(text), std::invalid_argument);
}

TEST(Vcf, SortOrder) {
  VcfRecord a{0, 5, ".", "A", "C", 0, Genotype::kHet};
  VcfRecord b{0, 5, ".", "A", "G", 0, Genotype::kHet};
  VcfRecord c{1, 1, ".", "A", "C", 0, Genotype::kHet};
  EXPECT_TRUE(vcf_less(a, b));
  EXPECT_TRUE(vcf_less(b, c));
}


// --- BED ----------------------------------------------------------------

TEST(Bed, ParseAndWrite) {
  const SamHeader header = two_contig_header();
  const std::string text =
      "# comment\ntrack name=x\nchr1\t10\t50\texon1\nchr2\t0\t100\n";
  const auto intervals = parse_bed(text, header);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].contig_id, 0);
  EXPECT_EQ(intervals[0].start, 10);
  EXPECT_EQ(intervals[0].end, 50);
  EXPECT_EQ(intervals[0].name, "exon1");
  const std::string round = write_bed(intervals, header);
  EXPECT_EQ(parse_bed(round, header), intervals);
}

TEST(Bed, UnknownContigThrows) {
  EXPECT_THROW(parse_bed("chrX\t0\t10\n", two_contig_header()),
               std::invalid_argument);
}

TEST(Bed, ShortLineThrows) {
  EXPECT_THROW(parse_bed("chr1\t0\n", two_contig_header()),
               std::invalid_argument);
}

TEST(IntervalSet, MergesOverlapsAndSorts) {
  IntervalSet set(std::vector<BedInterval>{{0, 50, 80, ""},
                                           {0, 10, 30, ""},
                                           {0, 25, 55, ""},
                                           {1, 5, 10, ""}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0].start, 10);
  EXPECT_EQ(set.intervals()[0].end, 80);
  EXPECT_EQ(set.total_length(), 70 + 5);
}

TEST(IntervalSet, OverlapQueries) {
  IntervalSet set(std::vector<BedInterval>{{0, 100, 200, ""},
                                           {0, 300, 400, ""},
                                           {2, 0, 50, ""}});
  EXPECT_TRUE(set.overlaps(0, 150, 160));
  EXPECT_TRUE(set.overlaps(0, 90, 101));   // touches the left edge
  EXPECT_FALSE(set.overlaps(0, 200, 300));  // gap between intervals
  EXPECT_TRUE(set.overlaps(0, 199, 305));   // spans the gap
  EXPECT_FALSE(set.overlaps(1, 0, 1000));   // wrong contig
  EXPECT_TRUE(set.contains(2, 0));
  EXPECT_FALSE(set.contains(2, 50));        // end is exclusive
  EXPECT_FALSE(set.overlaps(0, 150, 150));  // empty query
}

TEST(IntervalSet, EmptyAndInvertedIntervalsDropped) {
  IntervalSet set(std::vector<BedInterval>{{0, 10, 10, ""},
                                           {0, 20, 15, ""}});
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace gpf
