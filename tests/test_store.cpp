// Tests for the out-of-core chunk store: the on-disk chunk format and its
// torn-write/corruption detection, the memory-budgeted residency layer,
// the FASTQ column codec, and the spill/materialize engine integration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "compress/column_codec.hpp"
#include "engine/dataset.hpp"
#include "store/chunk.hpp"
#include "store/chunk_store.hpp"
#include "store/fastq_chunk.hpp"
#include "store/residency.hpp"
#include "store/spill.hpp"

namespace gpf {
namespace {

using store::ChunkCorruptionError;
using store::ChunkData;
using store::ChunkFormatError;
using store::ChunkIoError;
using store::ChunkRef;
using store::ChunkStore;
using store::ChunkStoreConfig;
using store::ChunkView;
using store::ColumnSpec;
using store::MappedChunk;
using store::ResidencyManager;
using store::SpilledDataset;

/// Temp-directory fixture; files are removed on teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gpf_store_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

ChunkData sample_chunk(std::size_t records = 3) {
  ChunkData data;
  data.records = records;
  data.columns.push_back(ColumnSpec{"alpha", 1, {1, 2, 3, 4, 5}});
  data.columns.push_back(ColumnSpec{"beta", 2, {9, 8, 7}});
  data.columns.push_back(ColumnSpec{"empty", 0, {}});
  return data;
}

/// Deterministic FASTQ batch.  N bases carry quality '#', matching the
/// codec's escape contract (Phred 2 is what decompression restores), so
/// round trips are bit-identical.
std::vector<FastqRecord> make_reads(std::size_t n, std::uint64_t seed) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL + 1;
  const auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  std::vector<FastqRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FastqRecord rec;
    rec.name = "read/" + std::to_string(seed) + "/" + std::to_string(i);
    const std::size_t len = 60 + next() % 101;
    rec.sequence.reserve(len);
    rec.quality.reserve(len);
    for (std::size_t b = 0; b < len; ++b) {
      if (next() % 100 < 3) {
        rec.sequence.push_back('N');
        rec.quality.push_back('#');
      } else {
        rec.sequence.push_back("ACGT"[next() % 4]);
        rec.quality.push_back(static_cast<char>(33 + next() % 94));
      }
    }
    out.push_back(std::move(rec));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chunk format

TEST(ChunkFormat, EncodeParseRoundTrip) {
  const ChunkData data = sample_chunk();
  const std::vector<std::uint8_t> encoded = store::encode_chunk(data);
  const ChunkView view = ChunkView::parse(encoded);
  EXPECT_EQ(view.records(), 3u);
  ASSERT_EQ(view.columns().size(), 3u);
  for (const ColumnSpec& col : data.columns) {
    const auto bytes = view.column(col.name);
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), col.bytes.begin(),
                           col.bytes.end()))
        << col.name;
    EXPECT_EQ(view.find(col.name)->encoding, col.encoding);
  }
  EXPECT_EQ(view.find("nope"), nullptr);
  EXPECT_THROW(view.column("nope"), ChunkFormatError);
}

TEST(ChunkFormat, EmptyChunkRoundTrips) {
  ChunkData data;
  const auto encoded = store::encode_chunk(data);
  const ChunkView view = ChunkView::parse(encoded);
  EXPECT_EQ(view.records(), 0u);
  EXPECT_TRUE(view.columns().empty());
}

TEST(ChunkFormat, EveryTornPrefixIsDetected) {
  // A torn write leaves a strict prefix of the file.  Whatever its length,
  // opening must fail with a typed ChunkError — never a short parse.
  const auto encoded = store::encode_chunk(sample_chunk());
  for (std::size_t keep = 0; keep < encoded.size(); ++keep) {
    EXPECT_THROW(
        ChunkView::parse(std::span<const std::uint8_t>(encoded.data(), keep)),
        store::ChunkError)
        << "prefix of " << keep << " bytes parsed";
  }
}

TEST(ChunkFormat, TruncatedFooterThrowsFormatError) {
  auto encoded = store::encode_chunk(sample_chunk());
  encoded.resize(encoded.size() - 8);
  EXPECT_THROW(ChunkView::parse(encoded), ChunkFormatError);
}

TEST(ChunkFormat, BadMagicThrowsFormatError) {
  auto encoded = store::encode_chunk(sample_chunk());
  encoded.back() ^= 0xff;
  EXPECT_THROW(ChunkView::parse(encoded), ChunkFormatError);
}

TEST(ChunkFormat, FlippedFooterByteThrowsCorruption) {
  auto encoded = store::encode_chunk(sample_chunk());
  encoded[encoded.size() - store::kChunkTrailerBytes - 1] ^= 0x01;
  EXPECT_THROW(ChunkView::parse(encoded), ChunkCorruptionError);
}

TEST(ChunkFormat, FlippedColumnByteThrowsCorruptionOnAccess) {
  auto encoded = store::encode_chunk(sample_chunk());
  encoded[1] ^= 0x80;  // inside column "alpha"
  const ChunkView view = ChunkView::parse(encoded);  // footer still intact
  EXPECT_THROW(view.column("alpha"), ChunkCorruptionError);
  EXPECT_NO_THROW(view.column("beta"));
}

// ---------------------------------------------------------------------------
// ChunkStore + mmap

TEST_F(StoreTest, WriteOpenRoundTripLeavesNoTempFiles) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  const ChunkRef ref = cs.write("c0", sample_chunk());
  EXPECT_EQ(ref.path, cs.chunk_path("c0"));
  EXPECT_EQ(ref.records, 3u);

  const auto chunk = cs.open(ref.path);
  EXPECT_EQ(chunk->view().records(), 3u);
  EXPECT_EQ(chunk->bytes(), ref.bytes);

  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(path("chunks"))) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".gpc") << e.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(StoreTest, MissingChunkThrowsIoErrorWithPath) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  try {
    cs.open(cs.chunk_path("absent"));
    FAIL() << "expected throw";
  } catch (const ChunkIoError& e) {
    EXPECT_NE(std::string(e.what()).find("absent"), std::string::npos);
  }
}

TEST_F(StoreTest, RewriteInvalidatesResidentMapping) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  cs.write("c", sample_chunk(3));
  EXPECT_EQ(cs.open(cs.chunk_path("c"))->view().records(), 3u);
  cs.write("c", sample_chunk(7));
  EXPECT_EQ(cs.open(cs.chunk_path("c"))->view().records(), 7u);
}

TEST_F(StoreTest, TornWriteIsDetectedAtOpen) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  const auto encoded = store::encode_chunk(sample_chunk());
  cs.write_torn_for_testing("torn", encoded, 3, encoded.size() / 2);
  EXPECT_THROW(cs.open(cs.chunk_path("torn")), ChunkFormatError);
}

// ---------------------------------------------------------------------------
// Residency

TEST_F(StoreTest, ResidencyEvictsLeastRecentlyUsed) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  std::vector<std::string> paths;
  std::size_t chunk_bytes = 0;
  for (int i = 0; i < 3; ++i) {
    const ChunkRef ref = cs.write("c" + std::to_string(i), sample_chunk());
    paths.push_back(ref.path);
    chunk_bytes = ref.bytes;
  }
  // Budget fits exactly two chunks.
  ResidencyManager res(2 * chunk_bytes);
  res.acquire(paths[0]);
  res.acquire(paths[1]);
  res.acquire(paths[0]);  // touch: 1 is now the LRU
  res.acquire(paths[2]);  // evicts 1
  auto stats = res.stats();
  EXPECT_EQ(stats.resident_chunks, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  res.acquire(paths[0]);  // still resident
  EXPECT_EQ(res.stats().hits, 2u);
  res.acquire(paths[1]);  // re-opened
  EXPECT_EQ(res.stats().misses, 4u);
}

TEST_F(StoreTest, PinnedChunksAreNotEvicted) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  const ChunkRef r0 = cs.write("c0", sample_chunk());
  const ChunkRef r1 = cs.write("c1", sample_chunk());
  ResidencyManager res(1);  // budget below a single chunk
  const auto pinned = res.acquire(r0.path);
  // Over budget, but the handle pins c0: it must stay resident.
  EXPECT_EQ(res.stats().resident_chunks, 1u);
  const auto second = res.acquire(r1.path);
  EXPECT_EQ(second->view().records(), 3u);
  EXPECT_EQ(res.stats().resident_chunks, 2u);
  EXPECT_EQ(res.stats().evictions, 0u);
  // The pinned mapping stays valid regardless of residency decisions.
  EXPECT_EQ(pinned->view().records(), 3u);
}

TEST_F(StoreTest, DropForgetsButKeepsHandlesValid) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  const ChunkRef ref = cs.write("c", sample_chunk());
  ResidencyManager res(1 << 20);
  const auto handle = res.acquire(ref.path);
  res.drop(ref.path);
  EXPECT_EQ(res.stats().resident_chunks, 0u);
  EXPECT_EQ(handle->view().records(), 3u);
  res.acquire(ref.path);
  EXPECT_EQ(res.stats().misses, 2u);
}

// ---------------------------------------------------------------------------
// FASTQ columns

TEST(FastqColumns, RoundTripWithSpecialBases) {
  const std::vector<FastqRecord> reads = make_reads(200, 42);
  const FastqColumns cols =
      encode_fastq_columns(std::span<const FastqRecord>(reads));
  EXPECT_EQ(cols.records, reads.size());
  EXPECT_EQ(decode_fastq_columns(cols), reads);
}

TEST(FastqColumns, EmptyBatchRoundTrips) {
  const FastqColumns cols = encode_fastq_columns({});
  EXPECT_EQ(cols.records, 0u);
  EXPECT_TRUE(decode_fastq_columns(cols).empty());
}

TEST(FastqColumns, SingleRecordRoundTrips) {
  const std::vector<FastqRecord> reads = {{"only", "NACGTN", "#III!#"}};
  EXPECT_EQ(decode_fastq_columns(encode_fastq_columns(
                std::span<const FastqRecord>(reads))),
            reads);
}

TEST_F(StoreTest, FastqChunkRoundTripsThroughDisk) {
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  const std::vector<FastqRecord> reads = make_reads(64, 7);
  const ChunkRef ref = cs.write(
      "reads", store::encode_fastq_chunk(std::span<const FastqRecord>(reads)));
  const auto chunk = cs.open(ref.path);
  store::ChunkColumns cols;
  cols.records = chunk->view().records();
  for (const auto& d : chunk->view().columns()) {
    cols.columns.push_back({d.name, d.encoding, chunk->view().column(d.name)});
  }
  EXPECT_EQ(store::decode_fastq_chunk(cols), reads);
}

// ---------------------------------------------------------------------------
// Spill / materialize

TEST_F(StoreTest, OverBudgetSpillReloadsBitIdentical) {
  // End-to-end acceptance: a dataset at least 2x the store's memory budget
  // spills, evicts, reloads, and matches the in-memory run bit for bit.
  std::size_t budget = std::size_t{16} << 10;
  if (const char* env = std::getenv("GPF_STORE_BUDGET")) {
    budget = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  engine::Engine eng;
  ChunkStore cs(ChunkStoreConfig{path("chunks"), budget});

  const std::vector<FastqRecord> reads = make_reads(3000, 1234);
  auto ds = eng.parallelize(reads, 16);
  const std::vector<FastqRecord> in_memory = ds.collect();

  auto spilled =
      SpilledDataset<FastqRecord>::spill(ds, store::fastq_chunk_codec(), cs,
                                         "reads");
  EXPECT_EQ(spilled.partition_count(), 16u);
  ASSERT_GE(spilled.disk_bytes(), 2 * budget)
      << "test data no longer exceeds the memory budget";

  const auto reloaded = spilled.materialize("reads").collect();
  EXPECT_EQ(reloaded, in_memory);

  const auto stats = cs.residency().stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.resident_chunks, spilled.partition_count());
}

TEST_F(StoreTest, TornSpillWriteIsRetriedFromLineage) {
  engine::Engine eng;
  eng.set_fault_injector(std::make_shared<engine::FaultInjector>(
      7, std::vector<engine::FaultRule>{
             engine::FaultRule::torn_write("reads.spill", 0, 0.5)}));
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});

  const std::vector<FastqRecord> reads = make_reads(100, 5);
  auto ds = eng.parallelize(reads, 4);
  auto spilled = SpilledDataset<FastqRecord>::spill(
      ds, store::fastq_chunk_codec(), cs, "reads");
  // The first attempt of task 0 tore its write; the retry rewrote the
  // chunk from the live partition and the stage succeeded.
  EXPECT_EQ(eng.fault_injector()->injected_write_faults(), 1u);
  EXPECT_EQ(spilled.materialize("reads").collect(), reads);
}

TEST_F(StoreTest, TruncatedFooterSpillIsRetriedFromLineage) {
  engine::Engine eng;
  eng.set_fault_injector(std::make_shared<engine::FaultInjector>(
      7, std::vector<engine::FaultRule>{
             engine::FaultRule::truncate_footer("reads.spill",
                                                engine::kAnyTask, 8)}));
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});

  const std::vector<FastqRecord> reads = make_reads(100, 6);
  auto ds = eng.parallelize(reads, 4);
  auto spilled = SpilledDataset<FastqRecord>::spill(
      ds, store::fastq_chunk_codec(), cs, "reads");
  EXPECT_EQ(eng.fault_injector()->injected_write_faults(), 4u);
  EXPECT_EQ(spilled.materialize("reads").collect(), reads);
}

TEST_F(StoreTest, PersistentTornWriteFailsTyped) {
  engine::Engine eng;
  eng.set_fault_injector(std::make_shared<engine::FaultInjector>(
      7, std::vector<engine::FaultRule>{engine::FaultRule::torn_write(
             "reads.spill", 0, 0.5, /*attempts=*/-1)}));
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});

  auto ds = eng.parallelize(make_reads(50, 8), 2);
  EXPECT_THROW(SpilledDataset<FastqRecord>::spill(
                   ds, store::fastq_chunk_codec(), cs, "reads"),
               engine::StageFailure);
}

TEST_F(StoreTest, CorruptedColumnOnLoadIsRetried) {
  engine::Engine eng;
  // Column 2 is "seq"; corrupt it for partition 0's first load attempt.
  eng.set_fault_injector(std::make_shared<engine::FaultInjector>(
      7, std::vector<engine::FaultRule>{
             engine::FaultRule::corrupt_block("reads.load", 0, 2)}));
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});

  const std::vector<FastqRecord> reads = make_reads(100, 9);
  auto ds = eng.parallelize(reads, 4);
  auto spilled = SpilledDataset<FastqRecord>::spill(
      ds, store::fastq_chunk_codec(), cs, "reads");
  // The corruption lands on a copy; the retry re-reads pristine mmap
  // bytes and succeeds.
  EXPECT_EQ(spilled.materialize("reads").collect(), reads);
  EXPECT_EQ(eng.fault_injector()->injected_corruptions(), 1u);
}

TEST_F(StoreTest, PersistentLoadCorruptionFailsTyped) {
  engine::Engine eng;
  eng.set_fault_injector(std::make_shared<engine::FaultInjector>(
      7, std::vector<engine::FaultRule>{engine::FaultRule::corrupt_block(
             "reads.load", 0, 2, /*attempts=*/-1)}));
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});

  auto ds = eng.parallelize(make_reads(50, 10), 2);
  auto spilled = SpilledDataset<FastqRecord>::spill(
      ds, store::fastq_chunk_codec(), cs, "reads");
  try {
    spilled.materialize("reads").collect();
    FAIL() << "expected StageFailure";
  } catch (const engine::StageFailure& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST_F(StoreTest, AtRestDamageSurfacesTypedNeverSilent) {
  engine::Engine eng;
  ChunkStore cs(ChunkStoreConfig{path("chunks"), 1 << 20});
  const std::vector<FastqRecord> reads = make_reads(100, 11);
  auto ds = eng.parallelize(reads, 2);
  auto spilled = SpilledDataset<FastqRecord>::spill(
      ds, store::fastq_chunk_codec(), cs, "reads");

  // Flip one column byte on disk behind the store's back, then forget the
  // pristine resident mapping so the next open reads the damaged file.
  const std::string victim = spilled.chunk(0).path;
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(4);
    char byte = 0;
    f.seekg(4);
    f.get(byte);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(4);
    f.put(byte);
  }
  cs.residency().drop(victim);

  try {
    spilled.materialize("reads").collect();
    FAIL() << "expected StageFailure";
  } catch (const engine::StageFailure& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

}  // namespace
}  // namespace gpf
