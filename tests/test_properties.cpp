// Cross-module property sweeps: parameterized randomized tests asserting
// structural invariants that must hold for every seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "align/fm_index.hpp"
#include "align/suffix_array.hpp"
#include "common/rng.hpp"
#include "compress/record_codec.hpp"
#include "core/partition_info.hpp"
#include "formats/bed.hpp"
#include "formats/cigar.hpp"
#include "formats/fasta.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/sharedfs.hpp"
#include "simdata/reference_gen.hpp"

namespace gpf {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// --- PartitionInfo: random geometry + random splits -------------------------

TEST_P(SeedSweep, PartitionInfoTilesAndRoutesConsistently) {
  Rng rng(GetParam());
  // Random contig dictionary.
  std::vector<SamHeader::ContigInfo> contigs;
  const int n_contigs = 1 + static_cast<int>(rng.below(5));
  for (int c = 0; c < n_contigs; ++c) {
    contigs.push_back({"c" + std::to_string(c),
                       static_cast<std::int64_t>(500 + rng.below(20'000))});
  }
  const std::int64_t part_len = 100 + static_cast<std::int64_t>(
                                          rng.below(3'000));
  core::PartitionInfo info(contigs, part_len);

  // Random read-count vector and threshold.
  std::vector<std::uint64_t> counts(info.base_partition_count());
  for (auto& c : counts) c = rng.below(5'000);
  const std::uint64_t threshold = 1 + rng.below(1'000);
  info.apply_split(counts, threshold);

  // Invariant 1: regions tile every contig exactly.
  std::vector<std::int64_t> covered(contigs.size(), 0);
  std::int32_t last_contig = -1;
  std::int64_t last_end = 0;
  for (std::uint32_t p = 0; p < info.partition_count(); ++p) {
    const auto region = info.region_of(p);
    if (region.contig_id != last_contig) {
      if (last_contig >= 0) {
        ASSERT_EQ(last_end, contigs[last_contig].length);
      }
      ASSERT_EQ(region.start, 0);
      last_contig = region.contig_id;
    } else {
      ASSERT_EQ(region.start, last_end);
    }
    ASSERT_LT(region.start, region.end);
    covered[region.contig_id] += region.end - region.start;
    last_end = region.end;
  }
  ASSERT_EQ(last_end, contigs.back().length);
  for (std::size_t c = 0; c < contigs.size(); ++c) {
    ASSERT_EQ(covered[c], contigs[c].length);
  }

  // Invariant 2: partition_of(pos) names a region containing pos.
  for (int trial = 0; trial < 200; ++trial) {
    const auto cid = static_cast<std::int32_t>(rng.below(contigs.size()));
    const auto pos = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(contigs[cid].length)));
    const std::uint32_t p = info.partition_of(cid, pos);
    const auto region = info.region_of(p);
    ASSERT_EQ(region.contig_id, cid);
    ASSERT_GE(pos, region.start);
    ASSERT_LT(pos, region.end);
  }

  // Invariant 3: split table start ids are dense and ordered.
  std::uint32_t expected_start = 0;
  for (const auto& entry : info.split_table()) {
    ASSERT_EQ(entry.start_id, expected_start);
    expected_start += entry.split_count;
  }
  ASSERT_EQ(expected_start, info.partition_count());
}

// --- record codecs: randomized round trips ----------------------------------

FastqRecord random_fastq(Rng& rng) {
  const char bases[] = {'A', 'C', 'G', 'T', 'N'};
  FastqRecord r;
  const std::size_t name_len = rng.below(40);
  for (std::size_t i = 0; i < name_len; ++i) {
    r.name.push_back(static_cast<char>('!' + rng.below(90)));
  }
  const std::size_t len = rng.below(250);  // includes empty reads
  r.sequence.resize(len);
  r.quality.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    r.sequence[i] = bases[rng.below(8) == 0 ? 4 : rng.below(4)];
    r.quality[i] = static_cast<char>(33 + rng.below(94));
  }
  return r;
}

TEST_P(SeedSweep, FastqCodecsRoundTripArbitraryRecords) {
  Rng rng(GetParam() * 7919);
  std::vector<FastqRecord> records;
  const std::size_t n = rng.below(60);
  for (std::size_t i = 0; i < n; ++i) records.push_back(random_fastq(rng));
  for (const Codec codec :
       {Codec::kJavaLike, Codec::kKryoLike, Codec::kGpf}) {
    const auto bytes = encode_fastq_batch(records, codec);
    ASSERT_EQ(decode_fastq_batch(bytes, codec), records)
        << codec_name(codec);
  }
}

TEST_P(SeedSweep, SamCodecsRoundTripArbitraryRecords) {
  Rng rng(GetParam() * 104729);
  std::vector<SamRecord> records;
  const std::size_t n = rng.below(50);
  for (std::size_t i = 0; i < n; ++i) {
    const FastqRecord base = random_fastq(rng);
    SamRecord r;
    r.qname = base.name;
    r.flag = static_cast<std::uint16_t>(rng.below(0x1000));
    r.contig_id = static_cast<std::int32_t>(rng.below(30)) - 1;
    r.pos = static_cast<std::int64_t>(rng.below(1'000'000)) - 1;
    r.mapq = static_cast<std::uint8_t>(rng.below(255));
    if (!base.sequence.empty()) {
      r.cigar = {{CigarOp::kSoftClip, 1},
                 {CigarOp::kMatch,
                  static_cast<std::uint32_t>(base.sequence.size())},
                 {CigarOp::kInsertion, static_cast<std::uint32_t>(
                                           1 + rng.below(9))}};
    }
    r.mate_contig_id = static_cast<std::int32_t>(rng.below(30)) - 1;
    r.mate_pos = static_cast<std::int64_t>(rng.below(1'000'000)) - 1;
    r.tlen = static_cast<std::int64_t>(rng.below(2'000)) - 1'000;
    r.sequence = base.sequence;
    r.quality = base.quality;
    records.push_back(std::move(r));
  }
  for (const Codec codec :
       {Codec::kJavaLike, Codec::kKryoLike, Codec::kGpf}) {
    const auto bytes = encode_sam_batch(records, codec);
    ASSERT_EQ(decode_sam_batch(bytes, codec), records) << codec_name(codec);
  }
}

// --- text formats: parse(write(x)) == x -------------------------------------

TEST_P(SeedSweep, FastqTextRoundTripsArbitraryRecords) {
  Rng rng(GetParam() * 131);
  std::vector<FastqRecord> records;
  const std::size_t n = rng.below(40);
  for (std::size_t i = 0; i < n; ++i) records.push_back(random_fastq(rng));
  const std::string text = write_fastq(records);
  ASSERT_EQ(parse_fastq(text), records);
  // The validation-only scan agrees with the parse.
  const FastqScanStats stats = scan_fastq(text);
  ASSERT_EQ(stats.records, records.size());
  std::size_t bases = 0;
  for (const auto& r : records) bases += r.sequence.size();
  ASSERT_EQ(stats.bases, bases);
}

TEST_P(SeedSweep, ZipPairsPreservesMatesAndRejectsRaggedInputs) {
  Rng rng(GetParam() * 137);
  std::vector<FastqRecord> first;
  std::vector<FastqRecord> second;
  const std::size_t n = 1 + rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    first.push_back(random_fastq(rng));
    second.push_back(random_fastq(rng));
  }
  const auto pairs = zip_pairs(first, second);
  ASSERT_EQ(pairs.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(pairs[i].first, first[i]);
    ASSERT_EQ(pairs[i].second, second[i]);
  }
  second.pop_back();
  ASSERT_THROW(zip_pairs(first, second), std::invalid_argument);
}

TEST_P(SeedSweep, SamTextRoundTripsValidFiles) {
  Rng rng(GetParam() * 139);
  SamHeader header;
  const std::size_t n_contigs = 1 + rng.below(4);
  for (std::size_t c = 0; c < n_contigs; ++c) {
    header.contigs.push_back({"ctg" + std::to_string(c),
                              static_cast<std::int64_t>(
                                  1 + rng.below(50'000))});
  }
  header.coordinate_sorted = rng.below(2) == 0;
  static constexpr CigarOp kOps[] = {CigarOp::kMatch, CigarOp::kInsertion,
                                     CigarOp::kDeletion, CigarOp::kSoftClip};
  std::vector<SamRecord> records;
  const std::size_t n = rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    SamRecord r;
    r.qname = "q" + std::to_string(rng.below(1'000'000));
    r.flag = static_cast<std::uint16_t>(rng.below(0x1000));
    r.contig_id = static_cast<std::int32_t>(rng.below(n_contigs + 1)) - 1;
    r.pos = static_cast<std::int64_t>(rng.below(100'000)) - 1;
    r.mapq = static_cast<std::uint8_t>(rng.below(255));
    const std::size_t ops = rng.below(4);
    CigarOp prev = CigarOp::kPad;
    for (std::size_t k = 0; k < ops; ++k) {
      CigarOp op;
      do {
        op = kOps[rng.below(4)];
      } while (op == prev);  // adjacent same-op runs merge in text form
      prev = op;
      r.cigar.push_back({op, static_cast<std::uint32_t>(1 + rng.below(90))});
    }
    r.mate_contig_id = static_cast<std::int32_t>(rng.below(n_contigs + 1)) - 1;
    r.mate_pos = static_cast<std::int64_t>(rng.below(100'000)) - 1;
    r.tlen = static_cast<std::int64_t>(rng.below(4'000)) - 2'000;
    const std::size_t len = rng.below(60);
    for (std::size_t k = 0; k < len; ++k) {
      r.sequence.push_back("ACGTN"[rng.below(5)]);
      r.quality.push_back(static_cast<char>(33 + rng.below(94)));
    }
    // A quality of exactly "*" is SAM's missing-quality marker and cannot
    // survive a text round trip.
    if (r.quality == "*") r.quality = "I";
    records.push_back(std::move(r));
  }
  const SamFile parsed = parse_sam(write_sam(header, records));
  ASSERT_EQ(parsed.header, header);
  ASSERT_EQ(parsed.records, records);
}

TEST_P(SeedSweep, VcfTextRoundTripsValidFiles) {
  Rng rng(GetParam() * 149);
  VcfHeader header;
  const std::size_t n_contigs = 1 + rng.below(4);
  for (std::size_t c = 0; c < n_contigs; ++c) {
    header.contigs.push_back({"ctg" + std::to_string(c),
                              static_cast<std::int64_t>(
                                  1 + rng.below(50'000))});
  }
  header.sample_name = "S" + std::to_string(rng.below(1000));
  std::vector<VcfRecord> records;
  const std::size_t n = rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    VcfRecord v;
    v.contig_id = static_cast<std::int32_t>(rng.below(n_contigs));
    v.pos = static_cast<std::int64_t>(rng.below(100'000));
    v.id = rng.below(2) == 0 ? "." : "rs" + std::to_string(rng.below(100000));
    const std::size_t rlen = 1 + rng.below(5);
    const std::size_t alen = 1 + rng.below(5);
    for (std::size_t k = 0; k < rlen; ++k) {
      v.ref.push_back("ACGT"[rng.below(4)]);
    }
    for (std::size_t k = 0; k < alen; ++k) {
      v.alt.push_back("ACGT"[rng.below(4)]);
    }
    // Multiples of 1/4 are binary-exact, so "%.2f" text round-trips them.
    v.qual = static_cast<double>(rng.below(40'000)) / 4.0;
    v.genotype = static_cast<Genotype>(rng.below(3));
    records.push_back(std::move(v));
  }
  const VcfFile parsed = parse_vcf(write_vcf(header, records));
  ASSERT_EQ(parsed.header, header);
  ASSERT_EQ(parsed.records, records);
}

TEST_P(SeedSweep, FastaTextRoundTripsArbitraryContigs) {
  Rng rng(GetParam() * 151);
  std::vector<FastaContig> contigs;
  const std::size_t n = 1 + rng.below(5);
  for (std::size_t c = 0; c < n; ++c) {
    FastaContig contig;
    contig.name = "seq" + std::to_string(c);
    const std::size_t len = rng.below(400);
    for (std::size_t k = 0; k < len; ++k) {
      contig.sequence.push_back("ACGTN"[rng.below(5)]);
    }
    contigs.push_back(std::move(contig));
  }
  const Reference ref(std::move(contigs));
  const Reference parsed = parse_fasta(write_fasta(ref));
  ASSERT_EQ(parsed.contig_count(), ref.contig_count());
  for (std::size_t c = 0; c < ref.contig_count(); ++c) {
    ASSERT_EQ(parsed.contig(static_cast<std::int32_t>(c)).name,
              ref.contig(static_cast<std::int32_t>(c)).name);
    ASSERT_EQ(parsed.contig(static_cast<std::int32_t>(c)).sequence,
              ref.contig(static_cast<std::int32_t>(c)).sequence);
  }
}

TEST_P(SeedSweep, BedTextRoundTripsValidIntervals) {
  Rng rng(GetParam() * 157);
  SamHeader header;
  const std::size_t n_contigs = 1 + rng.below(4);
  for (std::size_t c = 0; c < n_contigs; ++c) {
    header.contigs.push_back({"ctg" + std::to_string(c),
                              static_cast<std::int64_t>(
                                  1 + rng.below(50'000))});
  }
  std::vector<BedInterval> intervals;
  const std::size_t n = rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    BedInterval iv;
    iv.contig_id = static_cast<std::int32_t>(rng.below(n_contigs));
    iv.start = static_cast<std::int64_t>(rng.below(10'000));
    iv.end = iv.start + 1 + static_cast<std::int64_t>(rng.below(5'000));
    if (rng.below(2) == 0) iv.name = "iv" + std::to_string(i);
    intervals.push_back(std::move(iv));
  }
  ASSERT_EQ(parse_bed(write_bed(intervals, header), header), intervals);
}

TEST_P(SeedSweep, CigarTextRoundTrips) {
  Rng rng(GetParam() * 163);
  static constexpr CigarOp kOps[] = {CigarOp::kMatch, CigarOp::kInsertion,
                                     CigarOp::kDeletion, CigarOp::kSoftClip,
                                     CigarOp::kSkip, CigarOp::kHardClip};
  for (int trial = 0; trial < 50; ++trial) {
    Cigar c;
    const std::size_t ops = rng.below(10);
    CigarOp prev = CigarOp::kPad;
    for (std::size_t k = 0; k < ops; ++k) {
      CigarOp op;
      do {
        op = kOps[rng.below(6)];
      } while (op == prev);
      prev = op;
      c.push_back({op, static_cast<std::uint32_t>(1 + rng.below(500))});
    }
    ASSERT_EQ(parse_cigar(cigar_to_string(c)), c);
  }
}

// --- FM index: occurrence completeness --------------------------------------

TEST_P(SeedSweep, FmIndexFindsAllOccurrences) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(4'000, GetParam() * 31));
  const align::FmIndex index(ref);
  Rng rng(GetParam() * 37);
  const std::string& seq = ref.contig(0).sequence;

  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t len = 8 + rng.below(16);
    const std::size_t start = rng.below(seq.size() - len);
    const std::string pattern = seq.substr(start, len);
    if (pattern.find('N') != std::string::npos) continue;

    // Ground truth occurrence count by direct scan.
    std::size_t expected = 0;
    for (std::size_t i = 0; i + len <= seq.size(); ++i) {
      if (seq.compare(i, len, pattern) == 0) ++expected;
    }
    const align::SaInterval iv = index.search(pattern);
    ASSERT_EQ(iv.size(), expected) << pattern;
    // Every located hit is a real occurrence.
    for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
      const auto rp = index.locate(row);
      ASSERT_EQ(rp.contig_id, 0);
      ASSERT_EQ(seq.compare(static_cast<std::size_t>(rp.offset), len,
                            pattern),
                0);
    }
  }
}

// --- suffix array: sortedness on arbitrary byte strings ----------------------

TEST_P(SeedSweep, SuffixArrayIsSorted) {
  Rng rng(GetParam() * 41);
  const std::size_t n = 1 + rng.below(2'000);
  std::vector<std::uint8_t> text(n);
  for (auto& c : text) c = static_cast<std::uint8_t>(rng.below(5));
  const auto sa = align::build_suffix_array(text);
  ASSERT_EQ(sa.size(), n);
  // Permutation check.
  std::vector<bool> seen(n, false);
  for (const auto s : sa) {
    ASSERT_LT(s, n);
    ASSERT_FALSE(seen[s]);
    seen[s] = true;
  }
  // Adjacent suffixes are in order.
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_TRUE(std::lexicographical_compare(
                    text.begin() + sa[i - 1], text.end(),
                    text.begin() + sa[i], text.end()) ||
                std::equal(text.begin() + sa[i - 1], text.end(),
                           text.begin() + sa[i]))
        << "unsorted at " << i;
  }
}

// --- cluster simulator: scheduling laws ---------------------------------------

TEST_P(SeedSweep, MakespanMonotoneAndBounded) {
  Rng rng(GetParam() * 43);
  sim::SimJob job;
  const int n_stages = 1 + static_cast<int>(rng.below(4));
  for (int s = 0; s < n_stages; ++s) {
    sim::SimStage stage;
    stage.name = "s" + std::to_string(s);
    stage.phase = "p";
    const std::size_t tasks = 1 + rng.below(600);
    for (std::size_t t = 0; t < tasks; ++t) {
      stage.tasks.push_back({0.01 + rng.uniform() * (rng.below(10) == 0
                                                         ? 5.0
                                                         : 0.2),
                             rng.below(1'000'000), rng.below(500'000)});
    }
    job.stages.push_back(std::move(stage));
  }

  double prev = 1e300;
  for (const std::size_t cores : {64, 128, 256, 512, 1024}) {
    const auto cluster = sim::ClusterConfig::with_cores(cores);
    const auto result = sim::simulate(job, cluster);
    // Monotone: more cores never hurt.
    ASSERT_LE(result.makespan, prev * 1.0001);
    prev = result.makespan;
    // Lower bound: total work never exceeds cores x makespan.
    double total = 0.0;
    for (const auto& sr : result.stages) {
      total += sr.compute_seconds + sr.disk_seconds + sr.net_seconds;
    }
    ASSERT_GE(result.makespan * static_cast<double>(cluster.total_cores()),
              total * 0.999);
  }
}

// --- shared filesystem: contention laws ----------------------------------------

TEST_P(SeedSweep, SharedFsIoFractionMonotoneInSamples) {
  Rng rng(GetParam() * 47);
  std::vector<sim::FilePipelineStep> steps;
  const int n_steps = 1 + static_cast<int>(rng.below(5));
  for (int s = 0; s < n_steps; ++s) {
    steps.push_back({"step" + std::to_string(s), 100.0 + rng.uniform() * 5000,
                     rng.below(20'000'000'000ULL),
                     rng.below(20'000'000'000ULL)});
  }
  for (const auto& fs :
       {sim::SharedFsConfig::lustre(), sim::SharedFsConfig::nfs()}) {
    double prev = -1.0;
    for (const std::size_t samples : {1, 2, 4, 8, 16, 32}) {
      const auto r = sim::run_file_pipeline(steps, samples, 16, fs);
      ASSERT_GE(r.io_fraction() + 1e-12, prev) << fs.name;
      prev = r.io_fraction();
    }
  }
}

}  // namespace
}  // namespace gpf
