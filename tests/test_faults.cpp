// Chaos suite: deterministic fault injection against the engine and the
// cluster simulator.
//
// Everything here must be bit-reproducible: injector decisions are pure
// hashes of (seed, stage, task, attempt), so two runs of the same faulted
// pipeline produce identical results *and* identical failure accounting.
// The suite runs under GPF_CHAOS_SEED (see .github/workflows/ci.yml, which
// sweeps ten seeds); tests that assert a specific fault count pin their own
// seed instead of using the sweep seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "engine/dataset.hpp"
#include "engine/fault_injector.hpp"
#include "engine/serialized.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

namespace gpf::engine {
namespace {

std::uint64_t chaos_seed() {
  // Strict parse: a malformed GPF_CHAOS_SEED aborts the suite instead of
  // silently collapsing the CI sweep onto one default seed.
  return seed_from_env("GPF_CHAOS_SEED", 42);
}

std::vector<int> iota_vec(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

/// Plain little-endian int codec so shuffles exercise the encode/checksum/
/// decode path without dragging in the genomic record formats.
ShuffleCodec<int> int_codec() {
  ShuffleCodec<int> c;
  c.encode = [](std::span<const int> xs) {
    std::vector<std::uint8_t> out(xs.size() * sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), xs.data(), out.size());
    return out;
  };
  c.decode = [](std::span<const std::uint8_t> bytes) {
    std::vector<int> out(bytes.size() / sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  };
  return c;
}

/// The injected-fault decision pattern over a (ordinal, task, attempt)
/// grid, as a set of flattened indices that failed.
std::set<std::size_t> failure_pattern(FaultInjector& injector) {
  std::set<std::size_t> failed;
  for (std::size_t ordinal = 0; ordinal < 4; ++ordinal) {
    for (std::size_t task = 0; task < 16; ++task) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        try {
          injector.check_attempt("stage", ordinal, task, attempt);
        } catch (const InjectedFault&) {
          failed.insert((ordinal * 16 + task) * 3 +
                        static_cast<std::size_t>(attempt));
        }
      }
    }
  }
  return failed;
}

TEST(Injector, SameSeedSameDecisions) {
  const auto rules = std::vector<FaultRule>{
      FaultRule::fail_random("", 0.5, /*attempts=*/-1)};
  FaultInjector a(chaos_seed(), rules);
  FaultInjector b(chaos_seed(), rules);
  const auto pa = failure_pattern(a);
  const auto pb = failure_pattern(b);
  EXPECT_EQ(pa, pb);
  // p=0.5 over 192 draws: some fail, some survive, for any seed.
  EXPECT_GT(pa.size(), 0u);
  EXPECT_LT(pa.size(), 192u);
  EXPECT_EQ(a.injected_failures(), pa.size());
}

TEST(Injector, DifferentSeedsDifferentDecisions) {
  const auto rules = std::vector<FaultRule>{
      FaultRule::fail_random("", 0.5, /*attempts=*/-1)};
  FaultInjector a(chaos_seed(), rules);
  FaultInjector b(chaos_seed() + 1, rules);
  EXPECT_NE(failure_pattern(a), failure_pattern(b));
}

TEST(Injector, FailTaskMatchesConfiguredTaskAndAttempts) {
  FaultInjector injector(
      7, {FaultRule::fail_task("stage", /*task=*/3, /*attempts=*/2)});
  EXPECT_THROW(injector.check_attempt("stage", 0, 3, 0), InjectedFault);
  EXPECT_THROW(injector.check_attempt("stage", 0, 3, 1), InjectedFault);
  EXPECT_NO_THROW(injector.check_attempt("stage", 0, 3, 2));   // recovered
  EXPECT_NO_THROW(injector.check_attempt("stage", 0, 2, 0));   // other task
  EXPECT_NO_THROW(injector.check_attempt("other", 0, 3, 0));   // other stage
  EXPECT_NO_THROW(injector.check_attempt("stage", 0, 3, -1));  // speculative
}

TEST(Chaos, FailedTaskRecoversAndMatchesCleanRun) {
  Engine clean({.worker_threads = 4});
  const auto expected =
      clean.parallelize(iota_vec(64), 8)
          .map("double", [](const int& x) { return 2 * x; })
          .collect();

  Engine chaotic({.worker_threads = 4});
  chaotic.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{FaultRule::fail_task("double", 5)}));
  const auto got = chaotic.parallelize(iota_vec(64), 8)
                       .map("double", [](const int& x) { return 2 * x; })
                       .collect();
  EXPECT_EQ(got, expected);
  const auto& stage = chaotic.metrics().stages().back();
  EXPECT_FALSE(stage.failed);
  EXPECT_EQ(stage.failed_attempts, 1u);
  EXPECT_EQ(stage.task_retries, 1u);
  EXPECT_EQ(stage.injected_faults, 1u);
}

TEST(Chaos, RetryExhaustionThrowsTypedStageFailure) {
  Engine engine({.worker_threads = 2, .max_task_retries = 2});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(), std::vector<FaultRule>{FaultRule::fail_task(
                        "doomed", 2, /*attempts=*/-1)}));
  auto ds = engine.parallelize(iota_vec(16), 4);
  try {
    ds.map_partitions<int>("doomed",
                           [](const std::vector<int>& part) { return part; });
    FAIL() << "expected StageFailure";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.stage(), "doomed");
    EXPECT_EQ(e.task(), 2u);
    EXPECT_EQ(e.attempts(), 3);  // initial attempt + 2 retries
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos);
  }
  // The wrecked stage is still in the metrics, flagged and accounted.
  const auto& stage = engine.metrics().stages().back();
  EXPECT_TRUE(stage.failed);
  EXPECT_EQ(stage.failed_attempts, 3u);
  EXPECT_EQ(stage.task_retries, 2u);
}

TEST(Chaos, RandomFaultsEverywhereStillComputeCorrectResults) {
  Engine clean({.worker_threads = 4});
  const auto expected = clean.parallelize(iota_vec(500), 16)
                            .filter("odd", [](const int& x) { return x % 2; })
                            .map("square", [](const int& x) { return x * x; })
                            .collect();
  // First-attempt failures with p=0.5 on every task of every stage: all
  // recover via retry, so the chaos run is indistinguishable by results.
  Engine chaotic({.worker_threads = 4});
  chaotic.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{FaultRule::fail_random("", 0.5)}));
  const auto got =
      chaotic.parallelize(iota_vec(500), 16)
          .filter("odd", [](const int& x) { return x % 2; })
          .map("square", [](const int& x) { return x * x; })
          .collect();
  EXPECT_EQ(got, expected);
  EXPECT_GT(chaotic.metrics().total_failed_attempts(), 0u);
  EXPECT_EQ(chaotic.metrics().total_failed_attempts(),
            chaotic.fault_injector()->injected_failures());
}

TEST(Chaos, AnySeedStillProducesCorrectResults) {
  Engine clean({.worker_threads = 4});
  auto sorted_clean = clean.parallelize(iota_vec(300), 8)
                          .shuffle("spread", 5,
                                   [](const int& x) {
                                     return static_cast<std::uint64_t>(x);
                                   })
                          .collect();
  std::sort(sorted_clean.begin(), sorted_clean.end());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Engine chaotic({.worker_threads = 4});
    chaotic.set_fault_injector(std::make_shared<FaultInjector>(
        seed, std::vector<FaultRule>{FaultRule::fail_random("", 0.4)}));
    auto got = chaotic.parallelize(iota_vec(300), 8)
                   .shuffle("spread", 5,
                            [](const int& x) {
                              return static_cast<std::uint64_t>(x);
                            })
                   .collect();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, sorted_clean) << "seed " << seed;
  }
}

/// The faulted pipeline the reproducibility tests run twice: random
/// first-attempt failures on the map stage, a corrupted shuffle block, and
/// a straggler.  Each fault kind targets a distinct stage so the counters
/// have exact expected values for any seed (e.g. a random failure on the
/// corrupted reduce task would pre-empt the attempt-0 corruption).
struct ChaosRunOutcome {
  std::vector<int> results;
  std::vector<std::size_t> failed_attempts;
  std::vector<std::size_t> retries;
  std::vector<std::size_t> speculative;
  std::vector<std::size_t> injected;
  std::size_t injector_failures = 0;
  std::size_t injector_delays = 0;
  std::size_t injector_corruptions = 0;
};

ChaosRunOutcome run_chaos_pipeline(std::uint64_t seed) {
  Engine engine({.worker_threads = 4});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      seed,
      std::vector<FaultRule>{
          FaultRule::fail_random("triple", 0.5),
          FaultRule::corrupt_block("modshuffle", 1, 2),
          FaultRule::delay_task("stretch", 0, /*delay_ms=*/60.0),
      }));
  auto ds = engine.parallelize(iota_vec(400), 8)
                .map("triple", [](const int& x) { return 3 * x; })
                .with_codec(int_codec())
                .shuffle("modshuffle", 6,
                         [](const int& x) {
                           return static_cast<std::uint64_t>(x / 3 % 6);
                         })
                .map_partitions<int>("stretch",
                                     [](const std::vector<int>& part) {
                                       return part;
                                     });
  ChaosRunOutcome out;
  out.results = ds.collect();
  for (const auto& stage : engine.metrics().stages()) {
    out.failed_attempts.push_back(stage.failed_attempts);
    out.retries.push_back(stage.task_retries);
    out.speculative.push_back(stage.speculative_launches);
    out.injected.push_back(stage.injected_faults);
  }
  const FaultInjector* injector = engine.fault_injector();
  out.injector_failures = injector->injected_failures();
  out.injector_delays = injector->injected_delays();
  out.injector_corruptions = injector->injected_corruptions();
  return out;
}

TEST(Chaos, SeededRunIsBitReproducible) {
  const std::uint64_t seed = chaos_seed();
  const ChaosRunOutcome a = run_chaos_pipeline(seed);
  const ChaosRunOutcome b = run_chaos_pipeline(seed);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.speculative, b.speculative);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.injector_failures, b.injector_failures);
  EXPECT_EQ(a.injector_delays, b.injector_delays);
  EXPECT_EQ(a.injector_corruptions, b.injector_corruptions);
  // And the chaos changed nothing about the answer.
  Engine clean({.worker_threads = 4});
  const auto expected =
      clean.parallelize(iota_vec(400), 8)
          .map("triple", [](const int& x) { return 3 * x; })
          .with_codec(int_codec())
          .shuffle("modshuffle",
                   6, [](const int& x) {
                     return static_cast<std::uint64_t>(x / 3 % 6);
                   })
          .collect();
  EXPECT_EQ(a.results, expected);
  EXPECT_EQ(a.injector_corruptions, 1u);
  EXPECT_EQ(a.injector_delays, 1u);
}

TEST(Chaos, InjectorAndMetricsAccountingAgree) {
  const ChaosRunOutcome a = run_chaos_pipeline(chaos_seed());
  const std::size_t stage_injected =
      std::accumulate(a.injected.begin(), a.injected.end(), std::size_t{0});
  EXPECT_EQ(stage_injected, a.injector_failures + a.injector_delays +
                                a.injector_corruptions);
}

TEST(Chaos, InjectedStragglerTriggersSpeculation) {
  Engine engine({.worker_threads = 4});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(), std::vector<FaultRule>{FaultRule::delay_task(
                        "slow", 1, /*delay_ms=*/400.0)}));
  auto got = engine.parallelize(iota_vec(64), 8)
                 .map("slow", [](const int& x) { return x + 1; })
                 .collect();
  std::vector<int> expected = iota_vec(65);
  expected.erase(expected.begin());
  EXPECT_EQ(got, expected);
  const auto& stage = engine.metrics().stages().back();
  EXPECT_EQ(stage.speculative_launches, 1u);
  EXPECT_EQ(stage.injected_faults, 1u);
  // The speculative copy won long before the straggler's 400ms nap ended.
  EXPECT_LT(stage.wall_seconds, 0.35);
}

TEST(Chaos, SpeculationDisabledWaitsOutTheStraggler) {
  Engine engine({.worker_threads = 4,
                 .serialize_shuffle = true,
                 .max_task_retries = 2,
                 .speculation = {.enabled = false}});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(), std::vector<FaultRule>{FaultRule::delay_task(
                        "slow", 1, /*delay_ms=*/150.0)}));
  auto ds = engine.parallelize(iota_vec(64), 8)
                .map("slow", [](const int& x) { return x + 1; });
  EXPECT_EQ(ds.count(), 64u);
  const auto& stage = engine.metrics().stages().back();
  EXPECT_EQ(stage.speculative_launches, 0u);
  EXPECT_EQ(stage.injected_faults, 1u);
  EXPECT_GE(stage.wall_seconds, 0.12);
}

TEST(Chaos, SpeculativeCopyWinsWhenPrimaryIsDoomed) {
  // Task 2's primary attempts would fail forever, but its injected delay
  // launches a speculative copy that is exempt from injection (it models a
  // healthy replacement node) and claims the task first.
  Engine engine({.worker_threads = 4, .max_task_retries = 1});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{
          FaultRule::delay_task("rescued", 2, /*delay_ms=*/400.0),
          FaultRule::fail_task("rescued", 2, /*attempts=*/-1),
      }));
  const auto got = engine.parallelize(iota_vec(64), 8)
                       .map("rescued", [](const int& x) { return x; })
                       .collect();
  EXPECT_EQ(got, iota_vec(64));
  const auto& stage = engine.metrics().stages().back();
  EXPECT_FALSE(stage.failed);
  EXPECT_EQ(stage.speculative_launches, 1u);
}

TEST(Chaos, CorruptedShuffleBlockIsRetriedAndHeals) {
  Engine clean({.worker_threads = 4});
  const auto expected =
      clean.parallelize(iota_vec(200), 4)
          .with_codec(int_codec())
          .shuffle("bykey", 3,
                   [](const int& x) { return static_cast<std::uint64_t>(x); })
          .collect();

  Engine chaotic({.worker_threads = 4});
  chaotic.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(), std::vector<FaultRule>{FaultRule::corrupt_block(
                        "bykey", /*map_task=*/0, /*block=*/1)}));
  const auto got =
      chaotic.parallelize(iota_vec(200), 4)
          .with_codec(int_codec())
          .shuffle("bykey", 3,
                   [](const int& x) { return static_cast<std::uint64_t>(x); })
          .collect();
  EXPECT_EQ(got, expected);
  const auto& stage = chaotic.metrics().stages().back();
  EXPECT_FALSE(stage.failed);
  EXPECT_EQ(stage.failed_attempts, 1u);  // the poisoned reduce attempt
  EXPECT_EQ(stage.task_retries, 1u);
  EXPECT_EQ(chaotic.fault_injector()->injected_corruptions(), 1u);
}

TEST(Chaos, PersistentCorruptionFailsTheReduceTask) {
  Engine engine({.worker_threads = 2, .max_task_retries = 2});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(), std::vector<FaultRule>{FaultRule::corrupt_block(
                        "bykey", 0, 1, /*attempts=*/-1)}));
  auto ds = engine.parallelize(iota_vec(100), 4).with_codec(int_codec());
  try {
    ds.shuffle("bykey", 3,
               [](const int& x) { return static_cast<std::uint64_t>(x); });
    FAIL() << "expected StageFailure";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.stage(), "bykey");
    EXPECT_GE(e.task(), 4u);  // a reduce task (map tasks are 0..3)
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  EXPECT_TRUE(engine.metrics().stages().back().failed);
}

TEST(Chaos, CorruptedPersistedBlockIsRetriedAndHeals) {
  // The zero-copy persist path carries the same integrity contract as the
  // in-flight shuffle: a corrupted adopted block fails its checksum in
  // materialize() and the attempt is retried against the pristine bytes.
  Engine engine({.worker_threads = 2});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{FaultRule::corrupt_block(
          "cache.materialize", /*map_task=*/1, /*block=*/0)}));
  auto ds = engine.parallelize(iota_vec(120), 4);
  const auto persisted =
      SerializedDataset<int>::persist(ds, int_codec(), "cache");
  const auto restored = persisted.materialize("cache").collect();
  EXPECT_EQ(restored, iota_vec(120));
  const auto& stage = engine.metrics().stages().back();
  EXPECT_EQ(stage.name, "cache.materialize");
  EXPECT_FALSE(stage.failed);
  EXPECT_EQ(stage.failed_attempts, 1u);  // the poisoned decode attempt
  EXPECT_EQ(stage.task_retries, 1u);
  EXPECT_EQ(engine.fault_injector()->injected_corruptions(), 1u);
}

TEST(Chaos, PersistentPersistedCorruptionFailsMaterialize) {
  Engine engine({.worker_threads = 2, .max_task_retries = 2});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{FaultRule::corrupt_block(
          "cache.materialize", 0, 0, /*attempts=*/-1)}));
  auto ds = engine.parallelize(iota_vec(60), 3);
  const auto persisted =
      SerializedDataset<int>::persist(ds, int_codec(), "cache");
  try {
    persisted.materialize("cache");
    FAIL() << "expected StageFailure";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.stage(), "cache.materialize");
    EXPECT_EQ(e.task(), 0u);
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  EXPECT_TRUE(engine.metrics().stages().back().failed);
}

TEST(SeedParse, AcceptsCanonicalDecimal) {
  EXPECT_EQ(parse_seed("0"), 0u);
  EXPECT_EQ(parse_seed("42"), 42u);
  EXPECT_EQ(parse_seed("007"), 7u);
  EXPECT_EQ(parse_seed("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(SeedParse, RejectsMalformedValues) {
  const char* bad_values[] = {
      "",      " ",      "abc",   "12abc", "abc12",
      "-1",    "+5",     " 7",    "7 ",    "1.5",
      "0x10",  "1e9",    "1,000", "18446744073709551616",
      "999999999999999999999999999"};
  for (const char* bad : bad_values) {
    EXPECT_THROW(parse_seed(bad), std::invalid_argument)
        << "accepted \"" << bad << '"';
  }
}

TEST(SeedParse, EnvReadsFallbacksAndRejects) {
  unsetenv("GPF_TEST_SEED");
  EXPECT_EQ(seed_from_env("GPF_TEST_SEED", 7), 7u);
  setenv("GPF_TEST_SEED", "123", 1);
  EXPECT_EQ(seed_from_env("GPF_TEST_SEED", 7), 123u);
  setenv("GPF_TEST_SEED", "bogus", 1);
  try {
    seed_from_env("GPF_TEST_SEED", 7);
    FAIL() << "malformed env seed accepted";
  } catch (const std::invalid_argument& e) {
    // The error must name the variable and the offending value.
    EXPECT_NE(std::string(e.what()).find("GPF_TEST_SEED"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
  unsetenv("GPF_TEST_SEED");
}

TEST(Chaos, GroupByUnderRandomFaultsKeepsGroupsComplete) {
  Engine engine({.worker_threads = 4});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{FaultRule::fail_random("", 0.4)}));
  auto grouped = engine.parallelize(iota_vec(210), 7)
                     .group_by("bymod", 4, [](const int& x) { return x % 7; });
  std::size_t total = 0;
  std::size_t groups = 0;
  for (const auto& part : grouped.partitions()) {
    for (const auto& [key, members] : part) {
      ++groups;
      total += members.size();
      for (const int m : members) EXPECT_EQ(m % 7, key);
    }
  }
  EXPECT_EQ(groups, 7u);
  EXPECT_EQ(total, 210u);
}

TEST(Chaos, AggregateSurvivesInjectedFailures) {
  Engine engine({.worker_threads = 4});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{FaultRule::fail_random("sum", 0.5)}));
  const int total = engine.parallelize(iota_vec(101), 8).aggregate<int>(
      "sum", 0, [](int acc, const int& x) { return acc + x; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 5050);
}


TEST(SimChaos, NodeFailureIncreasesMakespan) {
  sim::SimJob job;
  sim::SimStage stage;
  stage.name = "work";
  stage.tasks.assign(12, sim::SimTask{.compute_seconds = 1.0});
  job.stages.push_back(stage);

  sim::ClusterConfig cluster;
  cluster.nodes = 4;
  cluster.cores_per_node = 1;

  const auto base = sim::simulate(job, cluster);
  sim::FaultScenario scenario;
  scenario.events.push_back(sim::NodeEvent::failure(0, base.makespan / 2));
  const auto faulted = sim::simulate_with_faults(job, cluster, scenario);
  EXPECT_GT(faulted.makespan, base.makespan);
  EXPECT_GE(faulted.tasks_restarted, 1u);
  EXPECT_EQ(faulted.nodes_lost, 1u);
}

TEST(SimChaos, NodeSlowdownIncreasesMakespan) {
  sim::SimJob job;
  sim::SimStage stage;
  stage.name = "work";
  stage.tasks.assign(12, sim::SimTask{.compute_seconds = 1.0});
  job.stages.push_back(stage);

  sim::ClusterConfig cluster;
  cluster.nodes = 4;
  cluster.cores_per_node = 1;

  const auto base = sim::simulate(job, cluster);
  sim::FaultScenario scenario;
  scenario.events.push_back(sim::NodeEvent::slowdown(0, 0.0, 0.25));
  const auto degraded = sim::simulate_with_faults(job, cluster, scenario);
  EXPECT_GT(degraded.makespan, base.makespan);
  EXPECT_EQ(degraded.tasks_restarted, 0u);
  EXPECT_EQ(degraded.nodes_lost, 0u);
}

TEST(SimChaos, EmptyScenarioMatchesFaultFreeReplay) {
  sim::SimJob job;
  sim::SimStage stage;
  stage.name = "work";
  for (int i = 0; i < 20; ++i) {
    stage.tasks.push_back(sim::SimTask{
        .compute_seconds = 0.1 * (1 + i % 5),
        .disk_bytes = 1u << 20,
        .net_bytes = 1u << 18,
    });
  }
  job.stages.push_back(stage);
  const auto cluster = sim::ClusterConfig::with_cores(8);
  const auto base = sim::simulate(job, cluster);
  const auto chaosless = sim::simulate_with_faults(job, cluster, {});
  EXPECT_DOUBLE_EQ(chaosless.makespan, base.makespan);
  EXPECT_EQ(chaosless.tasks_restarted, 0u);
}

TEST(SimChaos, FailureBeforeStartEqualsSmallerCluster) {
  sim::SimJob job;
  sim::SimStage stage;
  stage.name = "work";
  stage.tasks.assign(9, sim::SimTask{.compute_seconds = 1.0});
  job.stages.push_back(stage);

  sim::ClusterConfig four;
  four.nodes = 4;
  four.cores_per_node = 1;
  sim::ClusterConfig three = four;
  three.nodes = 3;

  sim::FaultScenario scenario;
  scenario.events.push_back(sim::NodeEvent::failure(3, 0.0));
  const auto faulted = sim::simulate_with_faults(job, four, scenario);
  const auto smaller = sim::simulate(job, three);
  EXPECT_DOUBLE_EQ(faulted.makespan, smaller.makespan);
  EXPECT_EQ(faulted.tasks_restarted, 0u);
}

TEST(SimChaos, AllNodesFailedThrows) {
  sim::SimJob job;
  sim::SimStage stage;
  stage.name = "work";
  stage.tasks.assign(4, sim::SimTask{.compute_seconds = 1.0});
  job.stages.push_back(stage);
  sim::ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.cores_per_node = 2;
  sim::FaultScenario scenario;
  scenario.events.push_back(sim::NodeEvent::failure(0, 0.5));
  EXPECT_THROW(sim::simulate_with_faults(job, cluster, scenario),
               std::runtime_error);
}

TEST(SimChaos, ReplayIsDeterministic) {
  sim::SimJob job;
  sim::SimStage stage;
  stage.name = "work";
  for (int i = 0; i < 30; ++i) {
    stage.tasks.push_back(
        sim::SimTask{.compute_seconds = 0.05 * (1 + i % 7)});
  }
  job.stages.push_back(stage);
  sim::ClusterConfig cluster;
  cluster.nodes = 3;
  cluster.cores_per_node = 2;
  sim::FaultScenario scenario;
  scenario.events.push_back(sim::NodeEvent::failure(1, 0.2));
  scenario.events.push_back(sim::NodeEvent::slowdown(0, 0.1, 0.5));
  const auto a = sim::simulate_with_faults(job, cluster, scenario);
  const auto b = sim::simulate_with_faults(job, cluster, scenario);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks_restarted, b.tasks_restarted);
}

TEST(SimChaos, EngineTraceReplayWithNodeFailure) {
  // The acceptance scenario: record a real (faulted!) engine run, replay
  // its trace on a virtual cluster, then replay it again losing a node
  // mid-run — the makespan must strictly grow.
  Engine engine({.worker_threads = 4});
  engine.set_fault_injector(std::make_shared<FaultInjector>(
      chaos_seed(),
      std::vector<FaultRule>{FaultRule::fail_random("", 0.2)}));
  engine.parallelize(iota_vec(2000), 32)
      .map("scale", [](const int& x) { return x * 7; })
      .with_codec(int_codec())
      .shuffle("redistribute", 24,
               [](const int& x) { return static_cast<std::uint64_t>(x); })
      .sort_by("order", 16, [](const int& x) { return x; });

  const sim::SimJob job =
      sim::replicate_tasks(sim::trace_job(engine.metrics()), 16);
  sim::ClusterConfig cluster;
  cluster.nodes = 2;
  cluster.cores_per_node = 4;
  const auto base = sim::simulate(job, cluster);
  ASSERT_GT(base.makespan, 0.0);

  sim::FaultScenario scenario;
  scenario.events.push_back(sim::NodeEvent::failure(1, base.makespan / 2));
  const auto faulted = sim::simulate_with_faults(job, cluster, scenario);
  EXPECT_GT(faulted.makespan, base.makespan);
  EXPECT_EQ(faulted.nodes_lost, 1u);
}

}  // namespace
}  // namespace gpf::engine
