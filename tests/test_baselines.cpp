// Tests for the comparator baselines: Churchill, ADAM/GATK4-like, Persona.
#include <gtest/gtest.h>

#include <algorithm>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "baselines/adamlike.hpp"
#include "baselines/churchill.hpp"
#include "baselines/personalike.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"

namespace gpf::baselines {
namespace {

struct BaselineFixture : public ::testing::Test {
  static simdata::Workload& workload() {
    static simdata::Workload w = [] {
      simdata::ReadSimSpec spec;
      spec.coverage = 12.0;
      spec.duplicate_fraction = 0.06;
      spec.seed = 239;
      simdata::VariantSpec vspec;
      vspec.snp_rate = 0.0008;
      vspec.seed = 241;
      return simdata::make_workload(120'000, 2, spec, vspec);
    }();
    return w;
  }

  /// Aligned records shared by the cleaner-stage baselines.
  static engine::Dataset<SamRecord> aligned(engine::Engine& engine) {
    auto& w = workload();
    static std::vector<SamRecord> records = [&w] {
      const align::FmIndex index(w.reference);
      const align::ReadAligner aligner(index);
      std::vector<SamRecord> out;
      for (const auto& pair : w.sample.pairs) {
        auto [r1, r2] = aligner.align_pair(pair);
        out.push_back(std::move(r1));
        out.push_back(std::move(r2));
      }
      return out;
    }();
    return engine.parallelize(records, 8);
  }
};

TEST_F(BaselineFixture, ChurchillProducesVariantsAndFileTraffic) {
  auto& w = workload();
  engine::Engine engine({.worker_threads = 4});
  ChurchillConfig config;
  config.subregions = 16;
  const ChurchillResult result = run_churchill_pipeline(
      engine, w.reference, w.sample.pairs, w.truth, config);
  EXPECT_FALSE(result.variants.empty());
  EXPECT_GT(result.file_bytes, 1'000'000u);
  EXPECT_GT(result.duplicates_marked, 0u);

  // Recall sanity: Churchill runs the same algorithms, so it should find
  // a solid share of the planted SNPs.
  std::size_t snp_truth = 0, hit = 0;
  for (const auto& t : w.truth) {
    if (!t.is_snp()) continue;
    ++snp_truth;
    for (const auto& c : result.variants) {
      if (c.contig_id == t.contig_id && c.pos == t.pos && c.alt == t.alt) {
        ++hit;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(hit) / static_cast<double>(snp_truth), 0.7);

  // Stage metrics include the file boundaries for the simulator.
  bool saw_file_stage = false;
  for (const auto& s : engine.metrics().stages()) {
    if (s.name.find("file_write") != std::string::npos &&
        s.output_bytes > 0) {
      saw_file_stage = true;
    }
  }
  EXPECT_TRUE(saw_file_stage);
}

TEST_F(BaselineFixture, ChurchillFileStepsScale) {
  engine::Engine engine({.worker_threads = 4});
  auto& w = workload();
  run_churchill_pipeline(engine, w.reference, w.sample.pairs, w.truth,
                         {.subregions = 8});
  const auto steps1 = churchill_file_steps(engine.metrics(), 1.0);
  const auto steps2 = churchill_file_steps(engine.metrics(), 10.0);
  ASSERT_EQ(steps1.size(), steps2.size());
  double bytes1 = 0, bytes2 = 0;
  for (std::size_t i = 0; i < steps1.size(); ++i) {
    bytes1 += static_cast<double>(steps1[i].read_bytes +
                                  steps1[i].write_bytes);
    bytes2 += static_cast<double>(steps2[i].read_bytes +
                                  steps2[i].write_bytes);
  }
  EXPECT_NEAR(bytes2 / bytes1, 10.0, 0.1);
}

TEST_F(BaselineFixture, AdamLikeMatchesResultsButCostsMore) {
  engine::Engine engine({.worker_threads = 4});
  auto input = aligned(engine);

  // Duplicate flags must agree with a direct run: the baseline changes
  // the execution pattern, not the algorithm.
  engine::Engine raw_engine({.worker_threads = 4});
  auto raw = baseline_mark_duplicates(raw_engine, aligned(raw_engine),
                                      FrameworkProfile::none());
  auto adam = baseline_mark_duplicates(engine, input,
                                       FrameworkProfile::adam());
  auto count_dups = [](const engine::Dataset<SamRecord>& ds) {
    std::size_t n = 0;
    for (const auto& rec : ds.collect()) {
      if (rec.is_duplicate()) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_dups(raw), count_dups(adam));
  EXPECT_GT(count_dups(adam), 0u);

  // ADAM pays conversion stages the raw profile does not.
  std::size_t adam_converts = 0;
  for (const auto& s : engine.metrics().stages()) {
    if (s.name.find("convert") != std::string::npos) ++adam_converts;
  }
  EXPECT_EQ(adam_converts, 2u);
  EXPECT_GT(engine.metrics().total_compute_seconds(),
            raw_engine.metrics().total_compute_seconds());
}

TEST_F(BaselineFixture, AdamBqsrAndRealignRun) {
  auto& w = workload();
  engine::Engine engine({.worker_threads = 4});
  auto input = aligned(engine);
  auto recal = baseline_bqsr(engine, input, w.reference, w.truth,
                             FrameworkProfile::adam());
  EXPECT_EQ(recal.count(), input.count());
  auto realigned = baseline_indel_realign(engine, input, w.reference,
                                          w.truth,
                                          FrameworkProfile::gatk4());
  EXPECT_EQ(realigned.count(), input.count());
}

TEST_F(BaselineFixture, PersonaAlignsAndModelsConversion) {
  auto& w = workload();
  engine::Engine engine({.worker_threads = 4});
  const PersonaAlignResult result =
      persona_align(engine, w.reference, w.sample.pairs);
  EXPECT_EQ(result.records.size(), w.sample.pairs.size() * 2);
  EXPECT_GT(result.bases, 0u);
  EXPECT_GT(result.align_core_seconds, 0.0);
  EXPECT_GT(result.conversion_seconds, 0.0);

  // Most reads align.
  std::size_t mapped = 0;
  for (const auto& rec : result.records) {
    if (!rec.is_unmapped()) ++mapped;
  }
  EXPECT_GT(static_cast<double>(mapped) /
                static_cast<double>(result.records.size()),
            0.9);

  // Conversion dominates once the paper's AGD rates are applied: the
  // effective throughput including conversion is far below the raw one.
  const double raw_tp = result.throughput_gbases_per_s(
      result.align_core_seconds / 4.0);
  const double eff_tp = result.throughput_gbases_per_s(
      result.align_core_seconds / 4.0 + result.conversion_seconds);
  EXPECT_LT(eff_tp, raw_tp);
}

TEST_F(BaselineFixture, PersonaMarkDupFindsDuplicates) {
  engine::Engine engine({.worker_threads = 4});
  auto input = aligned(engine);
  auto marked = persona_mark_duplicates(engine, input);
  std::size_t dups = 0;
  for (const auto& rec : marked.collect()) {
    if (rec.is_duplicate()) ++dups;
  }
  EXPECT_GT(dups, 0u);
}

}  // namespace
}  // namespace gpf::baselines
