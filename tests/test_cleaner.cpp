// Tests for the Cleaner-stage algorithms: sorting, duplicate marking,
// indel realignment and BQSR.
#include <gtest/gtest.h>

#include <algorithm>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "cleaner/bqsr.hpp"
#include "cleaner/indel_realign.hpp"
#include "cleaner/markdup.hpp"
#include "cleaner/sorter.hpp"
#include "common/rng.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"

namespace gpf::cleaner {
namespace {

SamRecord make_record(std::string qname, std::int32_t contig,
                      std::int64_t pos, bool reverse = false,
                      std::string seq = "ACGTACGT") {
  SamRecord r;
  r.qname = std::move(qname);
  r.contig_id = contig;
  r.pos = pos;
  if (reverse) r.flag |= SamFlags::kReverse;
  r.cigar = {{CigarOp::kMatch, static_cast<std::uint32_t>(seq.size())}};
  r.quality = std::string(seq.size(), 'I');
  r.sequence = std::move(seq);
  return r;
}

// --- sorter ---------------------------------------------------------------

TEST(Sorter, SortsByCoordinate) {
  std::vector<SamRecord> records = {
      make_record("c", 1, 5), make_record("a", 0, 100),
      make_record("b", 0, 7)};
  coordinate_sort(records);
  EXPECT_TRUE(is_coordinate_sorted(records));
  EXPECT_EQ(records[0].qname, "b");
  EXPECT_EQ(records[1].qname, "a");
  EXPECT_EQ(records[2].qname, "c");
}

TEST(Sorter, UnmappedSortLast) {
  SamRecord unmapped = make_record("u", -1, -1);
  unmapped.flag |= SamFlags::kUnmapped;
  std::vector<SamRecord> records = {unmapped, make_record("m", 0, 5)};
  coordinate_sort(records);
  EXPECT_EQ(records[0].qname, "m");
}

TEST(Sorter, MergeSortedRuns) {
  std::vector<std::vector<SamRecord>> runs(3);
  Rng rng(113);
  std::size_t total = 0;
  for (auto& run : runs) {
    for (int i = 0; i < 50; ++i) {
      run.push_back(make_record("r" + std::to_string(total++), 0,
                                static_cast<std::int64_t>(rng.below(10000))));
    }
    coordinate_sort(run);
  }
  const auto merged = merge_sorted_runs(std::move(runs));
  EXPECT_EQ(merged.size(), 150u);
  EXPECT_TRUE(is_coordinate_sorted(merged));
}

TEST(Sorter, LinearIndexFindsCandidates) {
  std::vector<SamRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(make_record("r" + std::to_string(i), 0, i * 1000));
  }
  coordinate_sort(records);
  const LinearIndex index(records, 1);
  const std::size_t at = index.first_candidate(0, 50'000);
  ASSERT_LT(at, records.size());
  EXPECT_LE(records[at].pos, 50'000);
  // Scanning from the hint reaches position 50000.
  bool found = false;
  for (std::size_t i = at; i < records.size() && records[i].pos <= 50'000;
       ++i) {
    if (records[i].pos == 50'000) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(index.first_candidate(5, 0), records.size());
}

// --- duplicate marking ------------------------------------------------------

TEST(MarkDup, IdenticalFragmentsMarked) {
  // Three single-end reads at the same position/strand: keep best quality.
  auto a = make_record("a", 0, 100);
  auto b = make_record("b", 0, 100);
  auto c = make_record("c", 0, 100);
  a.quality = std::string(8, 'I');  // highest
  b.quality = std::string(8, '5');
  c.quality = std::string(8, '#');
  std::vector<SamRecord> records = {a, b, c};
  const auto stats = mark_duplicates(records);
  EXPECT_EQ(stats.duplicates_marked, 2u);
  EXPECT_FALSE(records[0].is_duplicate());
  EXPECT_TRUE(records[1].is_duplicate());
  EXPECT_TRUE(records[2].is_duplicate());
}

TEST(MarkDup, DifferentPositionsNotMarked) {
  std::vector<SamRecord> records = {make_record("a", 0, 100),
                                    make_record("b", 0, 101),
                                    make_record("c", 1, 100)};
  const auto stats = mark_duplicates(records);
  EXPECT_EQ(stats.duplicates_marked, 0u);
}

TEST(MarkDup, StrandDistinguishes) {
  std::vector<SamRecord> records = {make_record("a", 0, 100, false),
                                    make_record("b", 0, 100, true)};
  // Reverse record's unclipped start is its end, so these differ twice
  // over; never duplicates.
  const auto stats = mark_duplicates(records);
  EXPECT_EQ(stats.duplicates_marked, 0u);
}

TEST(MarkDup, SoftClipAwareSignature) {
  // A soft-clipped read starting "later" still has the same unclipped
  // start as an unclipped read — Picard marks these as duplicates.
  auto a = make_record("a", 0, 100);
  auto b = make_record("b", 0, 103, false);
  b.cigar = parse_cigar("3S5M");
  b.sequence = "ACGTACGT";
  b.quality = "########";  // worse than a
  std::vector<SamRecord> records = {a, b};
  const auto stats = mark_duplicates(records);
  EXPECT_EQ(stats.duplicates_marked, 1u);
  EXPECT_TRUE(records[1].is_duplicate());
}

TEST(MarkDup, PairedSignatureUsesBothEnds) {
  auto mk_pair = [](const std::string& name, std::int64_t pos1,
                    std::int64_t pos2) {
    auto r1 = make_record(name + "/r1", 0, pos1);
    r1.qname = name;
    r1.flag |= SamFlags::kPaired | SamFlags::kFirstOfPair |
               SamFlags::kMateReverse;
    r1.mate_contig_id = 0;
    r1.mate_pos = pos2;
    auto r2 = make_record(name + "/r2", 0, pos2, true);
    r2.qname = name;
    r2.flag |= SamFlags::kPaired | SamFlags::kSecondOfPair;
    r2.mate_contig_id = 0;
    r2.mate_pos = pos1;
    return std::vector<SamRecord>{r1, r2};
  };
  auto p1 = mk_pair("f1", 100, 300);
  auto p2 = mk_pair("f2", 100, 300);  // duplicate fragment
  auto p3 = mk_pair("f3", 100, 400);  // different mate position
  std::vector<SamRecord> records;
  for (auto* p : {&p1, &p2, &p3}) {
    records.insert(records.end(), p->begin(), p->end());
  }
  const auto stats = mark_duplicates(records);
  // Both records of exactly one of f1/f2 are marked.
  std::size_t marked_f1 = 0, marked_f2 = 0, marked_f3 = 0;
  for (const auto& r : records) {
    if (!r.is_duplicate()) continue;
    if (r.qname == "f1") ++marked_f1;
    if (r.qname == "f2") ++marked_f2;
    if (r.qname == "f3") ++marked_f3;
  }
  EXPECT_EQ(marked_f1 + marked_f2, 2u);
  EXPECT_TRUE(marked_f1 == 0 || marked_f2 == 0);
  EXPECT_EQ(marked_f3, 0u);
  EXPECT_EQ(stats.duplicates_marked, 2u);
}

TEST(MarkDup, SimulatedDuplicatesRecovered) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(100'000, 131));
  const simdata::Donor donor(ref, {});
  simdata::ReadSimSpec spec;
  spec.coverage = 8.0;
  spec.duplicate_fraction = 0.08;
  const auto sample = simdata::simulate_reads(ref, donor, spec);

  const align::FmIndex index(ref);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> records;
  for (const auto& pair : sample.pairs) {
    auto [r1, r2] = aligner.align_pair(pair);
    records.push_back(std::move(r1));
    records.push_back(std::move(r2));
  }
  const auto stats = mark_duplicates(records);
  // Each simulated duplicate pair contributes 2 duplicate records.  Allow
  // slack for alignment noise and coincidental fragment collisions.
  const double expected = 2.0 * static_cast<double>(sample.duplicate_pairs);
  EXPECT_GT(static_cast<double>(stats.duplicates_marked), expected * 0.8);
  EXPECT_LT(static_cast<double>(stats.duplicates_marked), expected * 1.6);
}

TEST(MarkDup, RerunIsIdempotent) {
  std::vector<SamRecord> records = {make_record("a", 0, 100),
                                    make_record("b", 0, 100)};
  const auto first = mark_duplicates(records);
  const auto second = mark_duplicates(records);
  EXPECT_EQ(first.duplicates_marked, second.duplicates_marked);
}

// --- indel realignment -------------------------------------------------------

TEST(IndelRealign, TargetsFromCigarsAndKnownSites) {
  auto with_indel = make_record("i", 0, 500);
  with_indel.cigar = parse_cigar("4M2D4M");
  std::vector<SamRecord> records = {make_record("m", 0, 100), with_indel};
  std::vector<VcfRecord> known = {
      {0, 900, ".", "AT", "A", 50.0, Genotype::kHet},   // indel: target
      {0, 950, ".", "A", "C", 50.0, Genotype::kHet}};   // SNP: ignored
  RealignOptions options;
  const auto targets = find_realign_targets(records, known, options);
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].start, 504);
  EXPECT_EQ(targets[1].start, 900);
}

TEST(IndelRealign, NearbyTargetsMerge) {
  auto a = make_record("a", 0, 100);
  a.cigar = parse_cigar("4M1D4M");
  auto b = make_record("b", 0, 120);
  b.cigar = parse_cigar("4M1I4M");
  RealignOptions options;
  options.merge_window = 50;
  const auto targets = find_realign_targets(
      std::vector<SamRecord>{a, b}, {}, options);
  EXPECT_EQ(targets.size(), 1u);
}

TEST(IndelRealign, RecoversBetterAlignmentAroundDeletion) {
  // Reference with a unique context; read sequenced from a donor with a
  // 4-base deletion, but initially aligned with mismatches instead of the
  // gap.
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(2'000, 137));
  const std::string& seq = ref.contig(0).sequence;
  // Donor read: 40 bases, skipping ref[520..524).
  std::string read = seq.substr(500, 20) + seq.substr(524, 20);

  SamRecord rec;
  rec.qname = "r";
  rec.contig_id = 0;
  rec.pos = 500;
  rec.cigar = parse_cigar("40M");  // misaligned: no gap
  rec.sequence = read;
  rec.quality = std::string(40, 'I');

  std::vector<SamRecord> records = {rec};
  std::vector<VcfRecord> known = {
      {0, 519, ".", seq.substr(519, 5), seq.substr(519, 1), 50.0,
       Genotype::kHet}};
  RealignOptions options;
  const auto targets = find_realign_targets(records, known, options);
  ASSERT_FALSE(targets.empty());
  const auto stats = realign_reads(records, ref, targets, options);
  EXPECT_EQ(stats.reads_realigned, 1u);
  // The new CIGAR must contain a 4-base deletion.
  bool has_del = false;
  for (const auto& el : records[0].cigar) {
    if (el.op == CigarOp::kDeletion && el.length == 4) has_del = true;
  }
  EXPECT_TRUE(has_del) << cigar_to_string(records[0].cigar);
}

TEST(IndelRealign, LeavesGoodAlignmentsAlone) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(2'000, 139));
  SamRecord rec;
  rec.qname = "r";
  rec.contig_id = 0;
  rec.pos = 300;
  rec.sequence = std::string(ref.slice(0, 300, 50));
  rec.quality = std::string(50, 'I');
  rec.cigar = parse_cigar("50M");
  std::vector<SamRecord> records = {rec};
  std::vector<VcfRecord> known = {
      {0, 320, ".", "AT", "A", 50.0, Genotype::kHet}};
  RealignOptions options;
  const auto targets = find_realign_targets(records, known, options);
  const Cigar before = records[0].cigar;
  realign_reads(records, ref, targets, options);
  EXPECT_EQ(records[0].cigar, before);
  EXPECT_EQ(records[0].pos, 300);
}

// --- BQSR ---------------------------------------------------------------------

TEST(Bqsr, KnownSitesMembership) {
  std::vector<VcfRecord> sites = {{0, 100, ".", "ACG", "A", 0, Genotype::kHet},
                                  {1, 5, ".", "A", "T", 0, Genotype::kHet}};
  const KnownSites known(sites);
  EXPECT_TRUE(known.contains(0, 100));
  EXPECT_TRUE(known.contains(0, 102));  // deletion span covered
  EXPECT_FALSE(known.contains(0, 103));
  EXPECT_TRUE(known.contains(1, 5));
  EXPECT_FALSE(known.contains(1, 6));
}

TEST(Bqsr, TableMergeAddsCounts) {
  RecalTable a, b;
  a.observe(30, 5, 0, true);
  a.observe(30, 5, 0, false);
  b.observe(30, 5, 0, false);
  a.merge(b);
  EXPECT_EQ(a.total_observations(), 3u);
  EXPECT_EQ(a.total_mismatches(), 1u);
}

TEST(Bqsr, EmpiricalQualityTracksErrorRate) {
  RecalTable t;
  // Reported Q40 but actual error rate 10% -> empirical ~Q10.
  for (int i = 0; i < 1000; ++i) t.observe(40, 10, 3, i % 10 == 0);
  const double q = t.empirical_quality(40, 10, 3);
  EXPECT_NEAR(q, 10.0, 1.0);
}

TEST(Bqsr, DinucleotideContext) {
  EXPECT_EQ(dinucleotide_context('A', 'A'), 0);
  EXPECT_EQ(dinucleotide_context('T', 'T'), 15);
  EXPECT_EQ(dinucleotide_context('N', 'A'), -1);
}

TEST(Bqsr, CollectSkipsKnownSitesAndDuplicates) {
  Reference ref(std::vector<FastaContig>{{"c", std::string(1000, 'A')}});
  auto rec = make_record("r", 0, 100, false, "AAAAAAAA");
  auto dup = rec;
  dup.flag |= SamFlags::kDuplicate;
  std::vector<VcfRecord> sites;
  for (int i = 0; i < 8; ++i) {
    sites.push_back({0, 100 + i, ".", "A", "C", 0, Genotype::kHet});
  }
  const KnownSites known(sites);
  const RecalTable with_mask =
      collect_covariates(std::vector<SamRecord>{rec}, ref, known);
  EXPECT_EQ(with_mask.total_observations(), 0u);  // fully masked
  const RecalTable dup_only =
      collect_covariates(std::vector<SamRecord>{dup}, ref, KnownSites(std::span<const VcfRecord>{}));
  EXPECT_EQ(dup_only.total_observations(), 0u);  // duplicates skipped
  const RecalTable normal =
      collect_covariates(std::vector<SamRecord>{rec}, ref, KnownSites(std::span<const VcfRecord>{}));
  EXPECT_EQ(normal.total_observations(), 8u);
}

TEST(Bqsr, ApplyCorrectsInflatedQualities) {
  // Reads claim Q40 but mismatch the reference 10% of the time (random
  // substitutions over a random reference, so no covariate is secretly
  // perfectly informative); after recalibration their mean quality should
  // drop toward Q10.
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(10'000, 149));
  Rng rng(149);
  std::vector<SamRecord> records;
  const char bases[] = {'A', 'C', 'G', 'T'};
  for (int i = 0; i < 50; ++i) {
    std::string seq(ref.slice(0, i * 150, 100));
    for (auto& c : seq) {
      if (rng.chance(0.1)) {
        char nc;
        do {
          nc = bases[rng.below(4)];
        } while (nc == c);
        c = nc;
      }
    }
    auto rec = make_record("r" + std::to_string(i), 0, i * 150, false, seq);
    rec.quality = std::string(100, static_cast<char>(33 + 40));
    rec.cigar = {{CigarOp::kMatch, 100}};
    records.push_back(std::move(rec));
  }
  const RecalTable table = collect_covariates(records, ref, KnownSites(std::span<const VcfRecord>{}));
  const double before_mean = 40.0;
  apply_recalibration(records, table);
  double after_sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : records) {
    for (const char q : r.quality) {
      after_sum += q - 33;
      ++n;
    }
  }
  const double after_mean = after_sum / static_cast<double>(n);
  EXPECT_LT(after_mean, before_mean - 20.0);
  EXPECT_NEAR(after_mean, 10.0, 3.0);
}

TEST(Bqsr, BroadcastTableSizeIsStable) {
  RecalTable t;
  const std::size_t empty_size = t.byte_size();
  t.observe(30, 1, 1, false);
  EXPECT_EQ(t.byte_size(), empty_size);  // fixed-shape table
  EXPECT_GT(empty_size, 100'000u);       // multi-100KB broadcast payload
}


TEST(MarkDup, SecondaryAndUnmappedNeverMarked) {
  auto secondary = make_record("s", 0, 100);
  secondary.flag |= SamFlags::kSecondary;
  auto primary1 = make_record("a", 0, 100);
  auto primary2 = make_record("b", 0, 100);
  SamRecord unmapped = make_record("u", -1, -1);
  unmapped.flag |= SamFlags::kUnmapped;
  std::vector<SamRecord> records = {secondary, primary1, primary2, unmapped};
  const auto stats = mark_duplicates(records);
  EXPECT_EQ(stats.duplicates_marked, 1u);  // only one of a/b
  EXPECT_FALSE(records[0].is_duplicate());
  EXPECT_FALSE(records[3].is_duplicate());
}

TEST(MarkDup, PreexistingFlagsCleared) {
  // Re-running on records with stale duplicate flags must re-derive from
  // scratch (Picard semantics).
  auto a = make_record("a", 0, 100);
  a.flag |= SamFlags::kDuplicate;  // stale: it is the only record
  std::vector<SamRecord> records = {a};
  mark_duplicates(records);
  EXPECT_FALSE(records[0].is_duplicate());
}

}  // namespace
}  // namespace gpf::cleaner
