// Tests for the dataflow engine: transformations, shuffles, codecs and
// metric recording.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "compress/record_codec.hpp"
#include "core/processes.hpp"
#include "engine/dataset.hpp"
#include "engine/serialized.hpp"

namespace gpf::engine {
namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Engine, ParallelizeSplitsEvenly) {
  Engine engine({.worker_threads = 4});
  auto ds = engine.parallelize(iota_vec(100), 8);
  EXPECT_EQ(ds.partition_count(), 8u);
  EXPECT_EQ(ds.count(), 100u);
  const auto collected = ds.collect();
  EXPECT_EQ(collected.size(), 100u);
  EXPECT_EQ(collected[0], 0);
  EXPECT_EQ(collected[99], 99);
}

TEST(Engine, ParallelizeZeroPartitionsThrows) {
  Engine engine({.worker_threads = 2});
  EXPECT_THROW(engine.parallelize(iota_vec(4), 0), std::invalid_argument);
}

TEST(Engine, MapTransformsEveryElement) {
  Engine engine({.worker_threads = 4});
  auto ds = engine.parallelize(iota_vec(50), 4);
  auto doubled = ds.map("double", [](const int& x) { return x * 2; });
  const auto out = doubled.collect();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST(Engine, FlatMapExpands) {
  Engine engine({.worker_threads = 2});
  auto ds = engine.parallelize(iota_vec(10), 2);
  auto expanded = ds.flat_map("expand", [](const int& x) {
    return std::vector<int>{x, x};
  });
  EXPECT_EQ(expanded.count(), 20u);
}

TEST(Engine, FilterKeepsMatching) {
  Engine engine({.worker_threads = 2});
  auto ds = engine.parallelize(iota_vec(100), 4);
  auto evens = ds.filter("evens", [](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.count(), 50u);
}

TEST(Engine, ShuffleRedistributesByKey) {
  Engine engine({.worker_threads = 4});
  auto ds = engine.parallelize(iota_vec(1000), 7);
  auto shuffled = ds.shuffle("bykey", 10, [](const int& x) {
    return static_cast<std::uint64_t>(x % 10);
  });
  EXPECT_EQ(shuffled.partition_count(), 10u);
  EXPECT_EQ(shuffled.count(), 1000u);
  // Every partition holds exactly the values with its residue.
  for (std::size_t p = 0; p < 10; ++p) {
    for (const int x : shuffled.partitions()[p]) {
      EXPECT_EQ(static_cast<std::size_t>(x % 10), p);
    }
    EXPECT_EQ(shuffled.partitions()[p].size(), 100u);
  }
}

TEST(Engine, GroupByProducesCompleteGroups) {
  Engine engine({.worker_threads = 4});
  auto ds = engine.parallelize(iota_vec(100), 5);
  auto grouped = ds.group_by("group", 4, [](const int& x) { return x % 7; });
  std::size_t total = 0;
  std::size_t groups = 0;
  for (const auto& part : grouped.partitions()) {
    for (const auto& [key, members] : part) {
      ++groups;
      total += members.size();
      for (const int m : members) EXPECT_EQ(m % 7, key);
    }
  }
  EXPECT_EQ(groups, 7u);
  EXPECT_EQ(total, 100u);
}

TEST(Engine, AggregateSums) {
  Engine engine({.worker_threads = 4});
  auto ds = engine.parallelize(iota_vec(101), 8);
  const int total = ds.aggregate<int>(
      "sum", 0, [](int acc, const int& x) { return acc + x; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 5050);
}

TEST(Engine, MetricsRecordStages) {
  Engine engine({.worker_threads = 2});
  auto ds = engine.parallelize(iota_vec(10), 2);
  ds.map("stage_a", [](const int& x) { return x; });
  ds.shuffle("stage_b", 2, [](const int& x) {
    return static_cast<std::uint64_t>(x);
  });
  const auto& stages = engine.metrics().stages();
  ASSERT_EQ(stages.size(), 2u);  // parallelize records nothing
  EXPECT_EQ(stages[0].name, "stage_a");
  EXPECT_EQ(stages[1].name, "stage_b");
  EXPECT_TRUE(stages[1].wide);
  EXPECT_EQ(stages[1].map_task_count, 2u);
}

TEST(Engine, ShuffleWithCodecMeasuresBytesAndRoundTrips) {
  Engine engine({.worker_threads = 2, .serialize_shuffle = true});
  std::vector<SamRecord> records;
  for (int i = 0; i < 100; ++i) {
    SamRecord r;
    r.qname = "r" + std::to_string(i);
    r.contig_id = 0;
    r.pos = i;
    r.sequence = "ACGTACGT";
    r.quality = "IIIIIIII";
    records.push_back(std::move(r));
  }
  auto ds = engine.parallelize(std::move(records), 4)
                .with_codec(core::make_sam_codec(Codec::kGpf));
  auto shuffled = ds.shuffle("sam", 3, [](const SamRecord& r) {
    return static_cast<std::uint64_t>(r.pos % 3);
  });
  EXPECT_EQ(shuffled.count(), 100u);
  const auto& stage = engine.metrics().stages().back();
  EXPECT_GT(stage.shuffle_write_bytes, 0u);
  EXPECT_EQ(stage.shuffle_write_bytes, stage.shuffle_read_bytes);
  EXPECT_GT(stage.serialization_seconds, 0.0);
  // Records survive the byte round trip.
  auto all = shuffled.collect();
  EXPECT_EQ(all.size(), 100u);
}

TEST(Engine, SerializeShuffleOffStillEstimatesBytes) {
  Engine engine({.worker_threads = 2, .serialize_shuffle = false});
  auto ds = engine.parallelize(iota_vec(100), 4);
  ds.shuffle("ints", 2,
             [](const int& x) { return static_cast<std::uint64_t>(x); });
  const auto& stage = engine.metrics().stages().back();
  EXPECT_EQ(stage.shuffle_write_bytes, 100 * sizeof(int));
}

TEST(Engine, MapPartitionsIndexedSeesIndices) {
  Engine engine({.worker_threads = 2});
  auto ds = engine.parallelize(iota_vec(12), 3);
  auto tagged = ds.map_partitions_indexed<std::size_t>(
      "tag", [](std::size_t idx, const std::vector<int>& part) {
        return std::vector<std::size_t>(part.size(), idx);
      });
  const auto& parts = tagged.partitions();
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (const auto v : parts[p]) EXPECT_EQ(v, p);
  }
}

TEST(Engine, StageMetricsComputeHelpers) {
  StageMetrics s;
  s.task_seconds = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(s.total_compute_seconds(), 6.0);
  EXPECT_DOUBLE_EQ(s.max_task_seconds(), 3.0);
}

TEST(Engine, MetricsReset) {
  Engine engine({.worker_threads = 1});
  auto ds = engine.parallelize(iota_vec(4), 2);
  ds.map("x", [](const int& v) { return v; });
  EXPECT_GT(engine.metrics().stage_count(), 0u);
  engine.metrics().reset();
  EXPECT_EQ(engine.metrics().stage_count(), 0u);
}


TEST(Engine, FlakyTaskSucceedsViaRetry) {
  Engine engine({.worker_threads = 2, .max_task_retries = 3});
  auto ds = engine.parallelize(iota_vec(8), 4);
  std::atomic<int> failures{2};  // first two attempts anywhere fail
  auto out = ds.map_partitions<int>(
      "flaky", [&failures](const std::vector<int>& part) {
        if (failures.fetch_sub(1) > 0) {
          throw std::runtime_error("transient executor loss");
        }
        return part;
      });
  EXPECT_EQ(out.count(), 8u);
  const auto& stage = engine.metrics().stages().back();
  EXPECT_EQ(stage.task_retries, 2u);
  EXPECT_EQ(stage.failed_attempts, 2u);
  EXPECT_EQ(stage.injected_faults, 0u);  // plain throws, no injector involved
  EXPECT_FALSE(stage.failed);
}

TEST(Engine, RetriesExhaustedPropagatesError) {
  Engine engine({.worker_threads = 2, .max_task_retries = 1});
  auto ds = engine.parallelize(iota_vec(4), 2);
  EXPECT_THROW(ds.map_partitions<int>(
                   "doomed", [](const std::vector<int>&) -> std::vector<int> {
                     throw std::runtime_error("permanent failure");
                   }),
               std::runtime_error);
}

TEST(Engine, ZeroRetriesFailsImmediately) {
  Engine engine({.worker_threads = 1, .max_task_retries = 0});
  auto ds = engine.parallelize(iota_vec(2), 1);
  int attempts = 0;
  EXPECT_THROW(ds.map_partitions<int>(
                   "once", [&attempts](const std::vector<int>&)
                               -> std::vector<int> {
                     ++attempts;
                     throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  EXPECT_EQ(attempts, 1);
}

TEST(Engine, RetryRecomputesFromImmutableInput) {
  // The retried attempt sees the same input partition (lineage
  // recompute), so the result is identical to a clean run.
  Engine engine({.worker_threads = 1, .max_task_retries = 2});
  auto ds = engine.parallelize(iota_vec(10), 2);
  std::atomic<bool> failed_once{false};
  auto out = ds.map_partitions<int>(
      "recompute", [&failed_once](const std::vector<int>& part) {
        if (!failed_once.exchange(true)) {
          throw std::runtime_error("lost task");
        }
        std::vector<int> doubled;
        for (const int x : part) doubled.push_back(2 * x);
        return doubled;
      });
  const auto collected = out.collect();
  ASSERT_EQ(collected.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(collected[i], 2 * i);
}

TEST(Engine, ExhaustionThrowsStageFailureWithContext) {
  // Exhaustion surfaces the typed StageFailure even without an injector.
  Engine engine({.worker_threads = 2, .max_task_retries = 1});
  auto ds = engine.parallelize(iota_vec(4), 2);
  try {
    ds.map_partitions<int>(
        "doomed", [](const std::vector<int>&) -> std::vector<int> {
          throw std::runtime_error("permanent failure");
        });
    FAIL() << "expected StageFailure";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.stage(), "doomed");
    EXPECT_EQ(e.attempts(), 2);
    EXPECT_NE(std::string(e.what()).find("permanent failure"),
              std::string::npos);
  }
}

TEST(Engine, EmptyPartitionsFlowThroughGroupBy) {
  Engine engine({.worker_threads = 2});
  auto empty = engine.parallelize(std::vector<int>{}, 4);
  EXPECT_EQ(empty.count(), 0u);
  auto grouped =
      empty.group_by("empty_groups", 3, [](const int& x) { return x % 3; });
  EXPECT_EQ(grouped.partition_count(), 3u);
  EXPECT_EQ(grouped.count(), 0u);
}

TEST(Engine, EmptyPartitionsFlowThroughJoin) {
  Engine engine({.worker_threads = 2});
  auto left = engine.parallelize(iota_vec(10), 4);
  auto right = engine.parallelize(std::vector<int>{}, 4);
  auto joined = left.join<int>(
      "empty_join", right, 3, [](const int& x) { return x; },
      [](const int& y) { return y; });
  EXPECT_EQ(joined.partition_count(), 3u);
  EXPECT_EQ(joined.count(), 0u);
}

TEST(Engine, JoinMatchesKeysIncludingDuplicates) {
  Engine engine({.worker_threads = 4});
  // Left: 0..9 keyed by value % 5.  Right: {0,1,2, 0,1,2} keyed by value.
  auto left = engine.parallelize(iota_vec(10), 3);
  auto right = engine.parallelize(std::vector<int>{0, 1, 2, 0, 1, 2}, 2);
  auto joined = left.join<int>(
      "modjoin", right, 4, [](const int& x) { return x % 5; },
      [](const int& y) { return y; });
  // Left values with key in {0,1,2}: {0,5},{1,6},{2,7}; each pairs with two
  // duplicate right records -> 12 pairs.
  auto pairs = joined.collect();
  EXPECT_EQ(pairs.size(), 12u);
  std::size_t key_zero = 0;
  for (const auto& [key, lr] : pairs) {
    EXPECT_EQ(lr.first % 5, key);
    EXPECT_EQ(lr.second, key);
    if (key == 0) ++key_zero;
  }
  EXPECT_EQ(key_zero, 4u);  // {0,5} x two right zeros
}

TEST(Engine, WrongLengthCodecDetectedAsShuffleFailure) {
  // A codec whose decode silently drops a record must not corrupt results:
  // the record-count check fails the attempt, and since the bug is
  // deterministic the stage exhausts its retries with a StageFailure.
  Engine engine({.worker_threads = 2, .max_task_retries = 1});
  ShuffleCodec<int> lossy;
  lossy.encode = [](std::span<const int> xs) {
    std::vector<std::uint8_t> out(xs.size() * sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), xs.data(), out.size());
    return out;
  };
  lossy.decode = [](std::span<const std::uint8_t> bytes) {
    std::vector<int> out(bytes.size() / sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    if (!out.empty()) out.pop_back();  // the bug
    return out;
  };
  auto ds = engine.parallelize(iota_vec(40), 2).with_codec(lossy);
  try {
    ds.shuffle("lossy", 2,
               [](const int& x) { return static_cast<std::uint64_t>(x); });
    FAIL() << "expected StageFailure";
  } catch (const StageFailure& e) {
    EXPECT_NE(std::string(e.what()).find("decoded to"), std::string::npos);
  }
}

TEST(Engine, SingleWorkerShuffleOrderIsDeterministic) {
  // With one worker thread the whole pipeline is sequential; two identical
  // runs must produce byte-identical partition layouts (reduce tasks gather
  // map blocks in fixed order, so this also holds multi-threaded).
  auto run = [] {
    Engine engine({.worker_threads = 1});
    return engine.parallelize(iota_vec(123), 7)
        .shuffle("spread", 4,
                 [](const int& x) {
                   return static_cast<std::uint64_t>(x) * 2654435761u;
                 })
        .collect();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  Engine multi({.worker_threads = 4});
  const auto c = multi.parallelize(iota_vec(123), 7)
                     .shuffle("spread", 4,
                              [](const int& x) {
                                return static_cast<std::uint64_t>(x) *
                                       2654435761u;
                              })
                     .collect();
  EXPECT_EQ(a, c);
}


TEST(SerializedDataset, PersistAndMaterializeRoundTrip) {
  Engine engine({.worker_threads = 2});
  std::vector<SamRecord> records;
  for (int i = 0; i < 200; ++i) {
    SamRecord r;
    r.qname = "r" + std::to_string(i);
    r.contig_id = 0;
    r.pos = i * 10;
    r.sequence = "ACGTACGTACGTACGT";
    r.quality = "IIIIIIIIIIIIIIII";
    r.cigar = {{CigarOp::kMatch, 16}};
    records.push_back(std::move(r));
  }
  auto ds = engine.parallelize(records, 4);
  const auto persisted = SerializedDataset<SamRecord>::persist(
      ds, core::make_sam_codec(Codec::kGpf), "cache");
  EXPECT_EQ(persisted.partition_count(), 4u);
  EXPECT_GT(persisted.memory_bytes(), 0u);
  const auto restored = persisted.materialize("cache").collect();
  EXPECT_EQ(restored, records);
  // The persist/materialize stages are in the metrics.
  bool saw_persist = false, saw_materialize = false;
  for (const auto& s : engine.metrics().stages()) {
    if (s.name == "cache.persist") saw_persist = true;
    if (s.name == "cache.materialize") saw_materialize = true;
  }
  EXPECT_TRUE(saw_persist);
  EXPECT_TRUE(saw_materialize);
}

TEST(SerializedDataset, GpfSerializedFormSmallerThanLiveObjects) {
  // The paper's memory claim: serialized storage halves memory use.
  Engine engine({.worker_threads = 2});
  std::vector<SamRecord> records;
  for (int i = 0; i < 500; ++i) {
    SamRecord r;
    r.qname = "read" + std::to_string(i);
    r.contig_id = 0;
    r.pos = i;
    r.sequence = std::string(100, "ACGT"[i % 4]);
    r.quality = std::string(100, 'F');
    r.cigar = {{CigarOp::kMatch, 100}};
    records.push_back(std::move(r));
  }
  std::size_t live = 0;
  for (const auto& r : records) live += live_size(r);
  auto ds = engine.parallelize(records, 4);
  const auto persisted = SerializedDataset<SamRecord>::persist(
      ds, core::make_sam_codec(Codec::kGpf), "mem");
  EXPECT_LT(persisted.memory_bytes(), live / 2);
}

TEST(SerializedDataset, PersistWithoutCodecThrows) {
  Engine engine({.worker_threads = 1});
  auto ds = engine.parallelize(iota_vec(4), 2);
  EXPECT_THROW(SerializedDataset<int>::persist(ds, {}, "x"),
               std::invalid_argument);
}

// Regression for the zero-copy adoption audit: persist() encodes into
// pooled buffers and adopts them into shared storage, so the buffers must
// leave the pool for good.  Churning the pool afterwards (codec shuffles
// acquiring and releasing buffers) must never touch the adopted bytes —
// if BufferPool::release ever recycled live aliased storage, the next
// acquirer would overwrite a block and the checksums recorded at persist
// time would no longer verify.
TEST(SerializedDataset, AdoptedBlocksSurvivePoolChurn) {
  Engine engine({.worker_threads = 4});
  ShuffleCodec<int> codec;
  codec.encode = [](std::span<const int> xs) {
    std::vector<std::uint8_t> out(xs.size() * sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), xs.data(), out.size());
    return out;
  };
  codec.decode = [](std::span<const std::uint8_t> bytes) {
    std::vector<int> out(bytes.size() / sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  };
  // Pooled encode path: persist adopts buffers acquired from the pool.
  codec.encode_into = [](std::span<const int> xs,
                         std::vector<std::uint8_t>& out) {
    out.resize(xs.size() * sizeof(int));
    if (!out.empty()) std::memcpy(out.data(), xs.data(), out.size());
  };

  auto ds = engine.parallelize(iota_vec(400), 4).with_codec(codec);
  const auto persisted = SerializedDataset<int>::persist(ds, codec, "adopt");
  const auto meta_before = persisted.block_meta();
  ASSERT_EQ(meta_before.size(), 4u);

  // Pool churn: every shuffle round acquires pooled buffers for its blocks
  // and releases them after the reduce.  If any adopted block's storage
  // were still reachable from the free list, this would scribble over it.
  for (int round = 0; round < 3; ++round) {
    auto shuffled =
        ds.shuffle("churn" + std::to_string(round), 3, [](const int& x) {
          return static_cast<std::uint64_t>(x) * 2654435761u;
        });
    EXPECT_EQ(shuffled.count(), 400u);
  }
  EXPECT_GT(engine.buffer_pool().reuse_count(), 0u);

  // The adopted blocks still verify against their persist-time checksums
  // and round-trip bit-identically.
  const auto restored = persisted.materialize("adopt").collect();
  EXPECT_EQ(restored, iota_vec(400));
  for (std::size_t i = 0; i < meta_before.size(); ++i) {
    EXPECT_EQ(persisted.block_meta()[i].checksum, meta_before[i].checksum);
    EXPECT_EQ(persisted.block_meta()[i].records, meta_before[i].records);
  }
}

// --- buffer pool ------------------------------------------------------------

TEST(BufferPool, RecyclesReleasedCapacity) {
  BufferPool pool(2);
  std::vector<std::uint8_t> a(100, 0xab);
  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);
  auto b = pool.acquire();
  EXPECT_EQ(b.size(), 0u);          // handed back empty...
  EXPECT_GE(b.capacity(), 100u);    // ...but with the old allocation
  EXPECT_EQ(pool.reuse_count(), 1u);
  EXPECT_EQ(pool.pooled(), 0u);
  // Beyond the cap, buffers are dropped instead of parked.
  pool.release(std::vector<std::uint8_t>(8, 1));
  pool.release(std::vector<std::uint8_t>(8, 2));
  pool.release(std::vector<std::uint8_t>(8, 3));
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(BufferPool, ByteBudgetBoundsParkedCapacity) {
  // Regression: the free list used to be bounded only by buffer count, so
  // one burst of wide blocks parked max_buffers x largest-capacity bytes
  // forever.  The byte budget evicts oldest-first instead.
  BufferPool pool(/*max_buffers=*/64, /*max_pooled_bytes=*/1000);
  std::vector<std::uint8_t> a(400);
  std::vector<std::uint8_t> b(400);
  const std::size_t cap_a = a.capacity();
  const std::size_t cap_b = b.capacity();
  ASSERT_LE(cap_a + cap_b, 1000u);
  pool.release(std::move(a));
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 2u);
  EXPECT_EQ(pool.pooled_bytes(), cap_a + cap_b);

  // A third release would overflow the budget: the OLDEST buffer (a) is
  // evicted to make room.
  pool.release(std::vector<std::uint8_t>(400));
  EXPECT_EQ(pool.pooled(), 2u);
  EXPECT_LE(pool.pooled_bytes(), pool.max_pooled_bytes());
  EXPECT_EQ(pool.byte_eviction_count(), 1u);

  // Acquiring gives back the newest parked capacity and returns the bytes
  // to the accounting.
  const auto got = pool.acquire();
  EXPECT_GE(got.capacity(), 400u);
  EXPECT_EQ(pool.pooled(), 1u);
  EXPECT_EQ(pool.pooled_bytes(), cap_b);
}

TEST(BufferPool, OversizedBufferIsFreedOutright) {
  BufferPool pool(/*max_buffers=*/4, /*max_pooled_bytes=*/100);
  pool.release(std::vector<std::uint8_t>(64));
  EXPECT_EQ(pool.pooled(), 1u);
  // Larger than the whole budget: dropped, and nothing parked is evicted.
  pool.release(std::vector<std::uint8_t>(500));
  EXPECT_EQ(pool.pooled(), 1u);
  EXPECT_EQ(pool.byte_eviction_count(), 0u);
}

TEST(Engine, ShuffleRecyclesEncodeBuffersThroughPool) {
  Engine engine({.worker_threads = 2});
  std::vector<SamRecord> records;
  for (int i = 0; i < 64; ++i) {
    SamRecord r;
    r.qname = "r" + std::to_string(i);
    r.contig_id = 0;
    r.pos = i;
    r.sequence = "ACGTACGTACGTACGT";
    r.quality = "IIIIIIIIIIIIIIII";
    r.cigar = {{CigarOp::kMatch, 16}};
    records.push_back(std::move(r));
  }
  auto ds = engine.parallelize(records, 4).with_codec(
      core::make_sam_codec(Codec::kKryoLike));
  auto once = ds.shuffle("pool1", 4, [](const SamRecord& r) {
    return static_cast<std::uint64_t>(r.pos);
  });
  // All 4x4 encoded blocks were returned to the pool after the reduce.
  EXPECT_EQ(engine.buffer_pool().pooled(), 16u);
  auto twice = once.shuffle("pool2", 4, [](const SamRecord& r) {
    return static_cast<std::uint64_t>(r.pos / 2);
  });
  EXPECT_GT(engine.buffer_pool().reuse_count(), 0u);
  auto got = twice.collect();
  std::sort(got.begin(), got.end(),
            [](const SamRecord& a, const SamRecord& b) {
              return a.pos < b.pos;
            });
  std::sort(records.begin(), records.end(),
            [](const SamRecord& a, const SamRecord& b) {
              return a.pos < b.pos;
            });
  EXPECT_EQ(got, records);
}


TEST(Engine, SortByProducesGlobalOrder) {
  Engine engine({.worker_threads = 2});
  Rng rng(509);
  std::vector<int> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<int>(rng.below(100000)));
  }
  auto ds = engine.parallelize(values, 9);
  auto sorted = ds.sort_by("sort", 6, [](const int& x) { return x; });
  EXPECT_EQ(sorted.partition_count(), 6u);
  const auto out = sorted.collect();
  ASSERT_EQ(out.size(), values.size());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(out, values);
}

TEST(Engine, SortByHandlesSkewedKeys) {
  Engine engine({.worker_threads = 2});
  std::vector<int> values(1000, 7);  // all identical keys
  values.push_back(3);
  values.push_back(11);
  auto sorted = engine.parallelize(values, 4)
                    .sort_by("sort", 4, [](const int& x) { return x; });
  const auto out = sorted.collect();
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 1002u);
}

TEST(Engine, CoalesceMergesWithoutLosingRecords) {
  Engine engine({.worker_threads = 2});
  auto ds = engine.parallelize(iota_vec(100), 10);
  auto merged = ds.coalesce("merge", 3);
  EXPECT_EQ(merged.partition_count(), 3u);
  auto out = merged.collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, iota_vec(100));
  // Coalescing to more partitions than exist is a no-op.
  EXPECT_EQ(ds.coalesce("noop", 50).partition_count(), 10u);
}

TEST(Engine, UnionConcatenates) {
  Engine engine({.worker_threads = 2});
  auto a = engine.parallelize(iota_vec(10), 2);
  auto b = engine.parallelize(iota_vec(5), 1);
  auto u = a.union_with(b);
  EXPECT_EQ(u.partition_count(), 3u);
  EXPECT_EQ(u.count(), 15u);
}

}  // namespace
}  // namespace gpf::engine
