// Tests for the GPF core: Resources, PartitionInfo (Figs 8/9), the
// Pipeline scheduler (Algorithm 1), redundancy elimination (Fig 7), and
// the end-to-end WGS pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/partition_info.hpp"
#include "core/pipeline.hpp"
#include "core/processes.hpp"
#include "core/resource.hpp"
#include "core/cohort.hpp"
#include "core/wgs_pipeline.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"

namespace gpf::core {
namespace {

// --- Resource state machine -----------------------------------------------

TEST(Resource, DefinedUndefinedTransitions) {
  auto bundle = SamBundle::make_undefined("x");
  EXPECT_FALSE(bundle->defined());
  EXPECT_THROW(bundle->get(), std::logic_error);
  engine::Engine engine({.worker_threads = 1});
  bundle->set(engine.make_dataset<SamRecord>({}));
  EXPECT_TRUE(bundle->defined());
  EXPECT_NO_THROW(bundle->get());
}

TEST(Resource, DoubleDefineThrows) {
  engine::Engine engine({.worker_threads = 1});
  auto bundle = SamBundle::make_undefined("x");
  bundle->set(engine.make_dataset<SamRecord>({}));
  EXPECT_THROW(bundle->set(engine.make_dataset<SamRecord>({})),
               std::logic_error);
}

TEST(Resource, ValueResource) {
  auto v = ValueResource<int>::make_defined("answer", 42);
  EXPECT_TRUE(v->defined());
  EXPECT_EQ(v->get(), 42);
}

// --- PartitionInfo (paper Figs 8 and 9) --------------------------------------

std::vector<SamHeader::ContigInfo> paper_contigs() {
  // Mirrors Fig 8: contigs of 250, 244, 199, 192... partitions of
  // 1,000,000 bp each.
  return {{"chr1", 250'000'000},
          {"chr2", 244'000'000},
          {"chr3", 199'000'000},
          {"chr4", 192'000'000}};
}

TEST(PartitionInfo, PaperFig8Example) {
  const PartitionInfo info(paper_contigs(), 1'000'000);
  // Starting numbers: 0, 250, 494, 693 (paper's table).
  // Position (contig 4 = index 3, 12,345,678):
  //   segment base address 693, offset 12 -> partition 705.
  EXPECT_EQ(info.base_partition_of(3, 12'345'678), 705u);
  EXPECT_EQ(info.base_partition_of(0, 0), 0u);
  EXPECT_EQ(info.base_partition_of(1, 0), 250u);
  EXPECT_EQ(info.base_partition_of(2, 0), 494u);
  EXPECT_EQ(info.base_partition_count(), 250u + 244 + 199 + 192);
}

TEST(PartitionInfo, PaperFig9SplitExample) {
  // Fig 9: partition 705 split into 4; after renumbering its start id is
  // 3510 in the paper's table.  We reproduce the *mechanism*: split 705
  // by 4, then position 12,345,678 with offset 345,678 in the partition
  // falls into sub-split 1 -> start_id + 1.
  const auto contigs = paper_contigs();
  const PartitionInfo base(contigs, 1'000'000);
  std::vector<std::uint64_t> counts(base.base_partition_count(), 100);
  counts[705] = 400;  // 4x the threshold
  PartitionInfo info = base;
  info.apply_split(counts, 100);

  const auto& entry = info.split_table()[705];
  EXPECT_EQ(entry.split_count, 4u);
  // Offset 345,678 / 250,000 = sub-partition 1 (paper's arithmetic).
  EXPECT_EQ(info.partition_of(3, 12'345'678), entry.start_id + 1);
  // Total partitions grew by 3.
  EXPECT_EQ(info.partition_count(), base.base_partition_count() + 3);
}

TEST(PartitionInfo, IdentityWithoutSplit) {
  const PartitionInfo info({{"c1", 1000}, {"c2", 500}}, 100);
  EXPECT_EQ(info.base_partition_count(), 10u + 5);
  EXPECT_EQ(info.partition_count(), 15u);
  for (std::int64_t pos = 0; pos < 1000; pos += 50) {
    EXPECT_EQ(info.partition_of(0, pos), info.base_partition_of(0, pos));
  }
}

TEST(PartitionInfo, RegionsCoverGenomeExactly) {
  PartitionInfo info({{"c1", 950}, {"c2", 430}}, 100);
  std::vector<std::uint64_t> counts(info.base_partition_count(), 10);
  counts[3] = 35;  // splits into 4
  info.apply_split(counts, 10);
  // Regions must tile each contig without gaps or overlaps.
  std::int64_t expected_start = 0;
  std::int32_t current_contig = 0;
  for (std::uint32_t p = 0; p < info.partition_count(); ++p) {
    const auto region = info.region_of(p);
    if (region.contig_id != current_contig) {
      EXPECT_EQ(expected_start, current_contig == 0 ? 950 : 430);
      current_contig = region.contig_id;
      expected_start = 0;
    }
    EXPECT_EQ(region.start, expected_start);
    EXPECT_GT(region.end, region.start);
    expected_start = region.end;
  }
  EXPECT_EQ(expected_start, 430);
}

TEST(PartitionInfo, PartitionOfMatchesRegionOf) {
  PartitionInfo info({{"c", 10'000}}, 1000);
  std::vector<std::uint64_t> counts(info.base_partition_count(), 10);
  counts[2] = 100;
  counts[7] = 55;
  info.apply_split(counts, 10);
  for (std::int64_t pos = 0; pos < 10'000; pos += 37) {
    const std::uint32_t p = info.partition_of(0, pos);
    const auto region = info.region_of(p);
    EXPECT_GE(pos, region.start) << pos;
    EXPECT_LT(pos, region.end) << pos;
  }
}

TEST(PartitionInfo, InvalidArgumentsThrow) {
  EXPECT_THROW(PartitionInfo({{"c", 100}}, 0), std::invalid_argument);
  PartitionInfo info({{"c", 1000}}, 100);
  EXPECT_THROW(info.base_partition_of(5, 0), std::out_of_range);
  std::vector<std::uint64_t> wrong_size(3, 1);
  EXPECT_THROW(info.apply_split(wrong_size, 10), std::invalid_argument);
}

// --- pipeline scheduling (Algorithm 1) ------------------------------------------

/// Minimal test process: defines its outputs, records execution order.
class StubProcess final : public Process {
 public:
  StubProcess(std::string name, std::vector<Resource*> ins,
              std::vector<ValueResource<int>*> outs,
              std::vector<std::string>* log, bool partition = false)
      : Process(std::move(name), std::move(ins),
                {outs.begin(), outs.end()}),
        outs_(std::move(outs)),
        log_(log),
        partition_(partition) {}

  bool is_partition_process() const override { return partition_; }

 private:
  void run(PipelineContext&) override {
    log_->push_back(name());
    for (auto* o : outs_) o->set(1);
  }

  std::vector<ValueResource<int>*> outs_;
  std::vector<std::string>* log_;
  bool partition_;
};

struct PipelineFixture : public ::testing::Test {
  PipelineFixture()
      : reference(simdata::generate_reference(
            simdata::ReferenceSpec::single(1'000, 1))),
        engine({.worker_threads = 2}) {}

  Reference reference;
  engine::Engine engine;
};

TEST_F(PipelineFixture, ExecutesInDependencyOrder) {
  Pipeline pipeline("p", engine, reference);
  auto* a = pipeline.add_resource(ValueResource<int>::make_undefined("a"));
  auto* b = pipeline.add_resource(ValueResource<int>::make_undefined("b"));
  auto* c = pipeline.add_resource(ValueResource<int>::make_undefined("c"));
  std::vector<std::string> log;
  // Add out of order: C depends on b, B on a, A on nothing.
  pipeline.add_process(std::make_unique<StubProcess>(
      "C", std::vector<Resource*>{b}, std::vector<ValueResource<int>*>{c},
      &log));
  pipeline.add_process(std::make_unique<StubProcess>(
      "B", std::vector<Resource*>{a}, std::vector<ValueResource<int>*>{b},
      &log));
  pipeline.add_process(std::make_unique<StubProcess>(
      "A", std::vector<Resource*>{}, std::vector<ValueResource<int>*>{a},
      &log));
  const auto report = pipeline.run();
  EXPECT_EQ(log, (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(report.timings.size(), 3u);
}

TEST_F(PipelineFixture, CircularDependencyDetected) {
  Pipeline pipeline("p", engine, reference);
  auto* a = pipeline.add_resource(ValueResource<int>::make_undefined("a"));
  auto* b = pipeline.add_resource(ValueResource<int>::make_undefined("b"));
  std::vector<std::string> log;
  pipeline.add_process(std::make_unique<StubProcess>(
      "X", std::vector<Resource*>{a}, std::vector<ValueResource<int>*>{b},
      &log));
  pipeline.add_process(std::make_unique<StubProcess>(
      "Y", std::vector<Resource*>{b}, std::vector<ValueResource<int>*>{a},
      &log));
  EXPECT_THROW(pipeline.run(), std::runtime_error);
}

TEST_F(PipelineFixture, DisconnectedDagRunsAllProcesses) {
  Pipeline pipeline("p", engine, reference);
  auto* a = pipeline.add_resource(ValueResource<int>::make_undefined("a"));
  auto* b = pipeline.add_resource(ValueResource<int>::make_undefined("b"));
  std::vector<std::string> log;
  pipeline.add_process(std::make_unique<StubProcess>(
      "A", std::vector<Resource*>{}, std::vector<ValueResource<int>*>{a},
      &log));
  pipeline.add_process(std::make_unique<StubProcess>(
      "B", std::vector<Resource*>{}, std::vector<ValueResource<int>*>{b},
      &log));
  pipeline.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST_F(PipelineFixture, FusionMarksLinearPartitionChains) {
  PipelineConfig config;
  config.eliminate_redundancy = true;
  Pipeline pipeline("p", engine, reference, config);
  auto* a = pipeline.add_resource(ValueResource<int>::make_undefined("a"));
  auto* b = pipeline.add_resource(ValueResource<int>::make_undefined("b"));
  auto* c = pipeline.add_resource(ValueResource<int>::make_undefined("c"));
  std::vector<std::string> log;
  auto* p1 = pipeline.add_process(std::make_unique<StubProcess>(
      "P1", std::vector<Resource*>{}, std::vector<ValueResource<int>*>{a},
      &log, /*partition=*/true));
  auto* p2 = pipeline.add_process(std::make_unique<StubProcess>(
      "P2", std::vector<Resource*>{a}, std::vector<ValueResource<int>*>{b},
      &log, /*partition=*/true));
  auto* p3 = pipeline.add_process(std::make_unique<StubProcess>(
      "P3", std::vector<Resource*>{b}, std::vector<ValueResource<int>*>{c},
      &log, /*partition=*/true));
  const auto report = pipeline.run();
  EXPECT_TRUE(p1->emit_bundle());
  EXPECT_TRUE(p2->emit_bundle());
  EXPECT_EQ(p2->bundle_source(), p1);
  EXPECT_EQ(p3->bundle_source(), p2);
  EXPECT_FALSE(p3->emit_bundle());
  EXPECT_EQ(report.processes_fused, 2u);
  EXPECT_EQ(report.fused_chains, 1u);
}

TEST_F(PipelineFixture, NoFusionWhenResourceHasTwoConsumers) {
  Pipeline pipeline("p", engine, reference);
  auto* a = pipeline.add_resource(ValueResource<int>::make_undefined("a"));
  auto* b = pipeline.add_resource(ValueResource<int>::make_undefined("b"));
  auto* c = pipeline.add_resource(ValueResource<int>::make_undefined("c"));
  std::vector<std::string> log;
  pipeline.add_process(std::make_unique<StubProcess>(
      "P1", std::vector<Resource*>{}, std::vector<ValueResource<int>*>{a},
      &log, true));
  auto* p2 = pipeline.add_process(std::make_unique<StubProcess>(
      "P2", std::vector<Resource*>{a}, std::vector<ValueResource<int>*>{b},
      &log, true));
  auto* p3 = pipeline.add_process(std::make_unique<StubProcess>(
      "P3", std::vector<Resource*>{a}, std::vector<ValueResource<int>*>{c},
      &log, true));
  pipeline.run();
  EXPECT_EQ(p2->bundle_source(), nullptr);
  EXPECT_EQ(p3->bundle_source(), nullptr);
}

TEST_F(PipelineFixture, FusionDisabledByConfig) {
  PipelineConfig config;
  config.eliminate_redundancy = false;
  Pipeline pipeline("p", engine, reference, config);
  auto* a = pipeline.add_resource(ValueResource<int>::make_undefined("a"));
  auto* b = pipeline.add_resource(ValueResource<int>::make_undefined("b"));
  std::vector<std::string> log;
  auto* p1 = pipeline.add_process(std::make_unique<StubProcess>(
      "P1", std::vector<Resource*>{}, std::vector<ValueResource<int>*>{a},
      &log, true));
  auto* p2 = pipeline.add_process(std::make_unique<StubProcess>(
      "P2", std::vector<Resource*>{a}, std::vector<ValueResource<int>*>{b},
      &log, true));
  pipeline.run();
  EXPECT_FALSE(p1->emit_bundle());
  EXPECT_EQ(p2->bundle_source(), nullptr);
}

// --- end-to-end WGS pipeline -----------------------------------------------------

struct WgsFixture : public ::testing::Test {
  static simdata::Workload& workload() {
    static simdata::Workload w = [] {
      simdata::ReadSimSpec spec;
      spec.coverage = 20.0;
      spec.duplicate_fraction = 0.05;
      spec.seed = 227;
      simdata::VariantSpec vspec;
      vspec.snp_rate = 0.0008;
      vspec.seed = 229;
      return simdata::make_workload(150'000, 2, spec, vspec);
    }();
    return w;
  }
};

TEST_F(WgsFixture, ProducesVariantsMatchingTruth) {
  engine::Engine engine({.worker_threads = 4});
  PipelineConfig config;
  config.partition_length = 20'000;
  config.split_threshold = 3'000;
  auto& w = workload();
  const WgsResult result = run_wgs_pipeline(engine, w.reference,
                                            w.sample.pairs, w.truth, config);
  ASSERT_FALSE(result.variants.empty());

  // Recall against planted SNPs.
  std::size_t snp_truth = 0, hit = 0;
  for (const auto& t : w.truth) {
    if (!t.is_snp()) continue;
    ++snp_truth;
    for (const auto& c : result.variants) {
      if (c.contig_id == t.contig_id && c.pos == t.pos && c.alt == t.alt) {
        ++hit;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(hit) / static_cast<double>(snp_truth), 0.75)
      << hit << "/" << snp_truth;

  // Duplicates were marked in the expected ballpark.
  const double expected_dups =
      2.0 * static_cast<double>(w.sample.duplicate_pairs);
  EXPECT_GT(static_cast<double>(result.markdup_stats.duplicates_marked),
            expected_dups * 0.7);
}

TEST_F(WgsFixture, FusionReducesStagesAndShuffleBytes) {
  auto& w = workload();
  PipelineConfig fused;
  fused.partition_length = 20'000;
  fused.eliminate_redundancy = true;
  PipelineConfig unfused = fused;
  unfused.eliminate_redundancy = false;

  engine::Engine engine_fused({.worker_threads = 4});
  const auto r1 = run_wgs_pipeline(engine_fused, w.reference, w.sample.pairs,
                                   w.truth, fused);
  engine::Engine engine_unfused({.worker_threads = 4});
  const auto r2 = run_wgs_pipeline(engine_unfused, w.reference,
                                   w.sample.pairs, w.truth, unfused);

  EXPECT_LT(engine_fused.metrics().stage_count(),
            engine_unfused.metrics().stage_count());
  EXPECT_LT(engine_fused.metrics().total_shuffle_bytes(),
            engine_unfused.metrics().total_shuffle_bytes());
  // Same variants either way: the optimization is semantics-preserving.
  EXPECT_EQ(r1.variants.size(), r2.variants.size());
}

TEST_F(WgsFixture, DynamicRepartitionSplitsHotPartitions) {
  simdata::ReadSimSpec spec;
  spec.coverage = 12.0;
  spec.hotspot_fraction = 0.05;
  spec.hotspot_multiplier = 30.0;
  spec.seed = 233;
  const auto w = simdata::make_workload(150'000, 1, spec);

  PipelineConfig with_split;
  with_split.partition_length = 15'000;
  with_split.split_threshold = 1'500;
  with_split.dynamic_repartition = true;
  PipelineConfig without_split = with_split;
  without_split.dynamic_repartition = false;

  engine::Engine e1({.worker_threads = 4});
  const auto r1 = run_wgs_pipeline(e1, w.reference, w.sample.pairs, w.truth,
                                   with_split);
  engine::Engine e2({.worker_threads = 4});
  const auto r2 = run_wgs_pipeline(e2, w.reference, w.sample.pairs, w.truth,
                                   without_split);
  EXPECT_GT(r1.final_partitions, r2.final_partitions);
}

TEST_F(WgsFixture, CodecChoiceDoesNotChangeResults) {
  auto& w = workload();
  PipelineConfig gpf_codec;
  gpf_codec.partition_length = 25'000;
  gpf_codec.codec = Codec::kGpf;
  PipelineConfig kryo_codec = gpf_codec;
  kryo_codec.codec = Codec::kKryoLike;

  engine::Engine e1({.worker_threads = 4});
  const auto r1 =
      run_wgs_pipeline(e1, w.reference, w.sample.pairs, w.truth, gpf_codec);
  engine::Engine e2({.worker_threads = 4});
  const auto r2 =
      run_wgs_pipeline(e2, w.reference, w.sample.pairs, w.truth, kryo_codec);
  ASSERT_EQ(r1.variants.size(), r2.variants.size());
  for (std::size_t i = 0; i < r1.variants.size(); ++i) {
    EXPECT_EQ(r1.variants[i], r2.variants[i]);
  }
  // And the GPF codec moves fewer shuffle bytes.
  EXPECT_LT(e1.metrics().total_shuffle_bytes(),
            e2.metrics().total_shuffle_bytes());
}


TEST_F(WgsFixture, GvcfModeEmitsReferenceBlocks) {
  engine::Engine engine({.worker_threads = 4});
  PipelineConfig config;
  config.partition_length = 25'000;
  auto& w = workload();
  const WgsResult result =
      run_wgs_pipeline(engine, w.reference, w.sample.pairs, w.truth, config,
                       /*use_gvcf=*/true);
  ASSERT_FALSE(result.variants.empty());
  ASSERT_FALSE(result.gvcf_blocks.empty());
  // Blocks are coordinate sorted, non-overlapping, and avoid variant
  // positions.
  for (std::size_t i = 1; i < result.gvcf_blocks.size(); ++i) {
    const auto& prev = result.gvcf_blocks[i - 1];
    const auto& cur = result.gvcf_blocks[i];
    if (prev.contig_id == cur.contig_id) {
      EXPECT_LE(prev.end, cur.start);
    }
  }
  for (const auto& v : result.variants) {
    for (const auto& b : result.gvcf_blocks) {
      if (b.contig_id != v.contig_id) continue;
      EXPECT_FALSE(v.pos >= b.start && v.pos < b.end)
          << "variant at " << v.pos << " inside block [" << b.start << ","
          << b.end << ")";
    }
  }
  // Blocks cover a substantial share of the genome at 20x coverage.
  std::int64_t covered = 0;
  for (const auto& b : result.gvcf_blocks) covered += b.end - b.start;
  EXPECT_GT(covered,
            static_cast<std::int64_t>(w.reference.total_length() / 2));
}

// --- cohort ---------------------------------------------------------------

TEST(Cohort, MergeCallSetsUnionsSites) {
  std::vector<std::vector<VcfRecord>> calls(3);
  calls[0] = {{0, 10, ".", "A", "C", 50.0, Genotype::kHet}};
  calls[1] = {{0, 10, ".", "A", "C", 80.0, Genotype::kHomAlt},
              {0, 20, ".", "G", "T", 30.0, Genotype::kHet}};
  calls[2] = {};
  const auto sites = merge_call_sets(calls);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].pos, 10);
  EXPECT_EQ(sites[0].genotypes,
            (std::vector<Genotype>{Genotype::kHet, Genotype::kHomAlt,
                                   Genotype::kHomRef}));
  EXPECT_DOUBLE_EQ(sites[0].qual, 80.0);
  EXPECT_EQ(sites[1].pos, 20);
  EXPECT_EQ(sites[1].genotypes[0], Genotype::kHomRef);
}

TEST(Cohort, MergeDistinguishesAlleles) {
  std::vector<std::vector<VcfRecord>> calls(2);
  calls[0] = {{0, 10, ".", "A", "C", 50.0, Genotype::kHet}};
  calls[1] = {{0, 10, ".", "A", "G", 50.0, Genotype::kHet}};
  const auto sites = merge_call_sets(calls);
  ASSERT_EQ(sites.size(), 2u);  // different ALTs are different sites
}

TEST(Cohort, WriteCohortVcfColumns) {
  VcfHeader header;
  header.contigs = {{"chr1", 1000}};
  std::vector<CohortSite> sites(1);
  sites[0].contig_id = 0;
  sites[0].pos = 9;
  sites[0].ref = "A";
  sites[0].alt = "T";
  sites[0].qual = 42.0;
  sites[0].genotypes = {Genotype::kHet, Genotype::kHomRef};
  const std::string text =
      write_cohort_vcf(header, {"S1", "S2"}, sites);
  EXPECT_NE(text.find("S1\tS2"), std::string::npos);
  EXPECT_NE(text.find("chr1\t10\t.\tA\tT"), std::string::npos);
  EXPECT_NE(text.find("GT\t0/1\t0/0"), std::string::npos);
}

TEST(Cohort, TwoSampleEndToEnd) {
  simdata::ReadSimSpec spec;
  spec.coverage = 12.0;
  spec.seed = 401;
  simdata::VariantSpec vspec;
  vspec.snp_rate = 0.0008;
  vspec.seed = 403;
  const auto w = simdata::make_workload(80'000, 1, spec, vspec);
  // Second sample: same truth genome, different reads.
  simdata::ReadSimSpec spec2 = spec;
  spec2.seed = 405;
  const simdata::Donor donor(w.reference, w.truth);
  const auto sample2 = simdata::simulate_reads(w.reference, donor, spec2);

  engine::Engine engine({.worker_threads = 4});
  PipelineConfig config;
  config.partition_length = 20'000;
  std::vector<SampleInput> samples;
  samples.push_back({"S1", w.sample.pairs});
  samples.push_back({"S2", sample2.pairs});
  const CohortResult result =
      run_cohort(engine, w.reference, std::move(samples), w.truth, config);

  ASSERT_EQ(result.per_sample.size(), 2u);
  ASSERT_FALSE(result.sites.empty());
  // Same donor genome: most sites should be shared (both samples carry a
  // non-ref genotype).
  std::size_t shared = 0;
  for (const auto& site : result.sites) {
    if (site.genotypes[0] != Genotype::kHomRef &&
        site.genotypes[1] != Genotype::kHomRef) {
      ++shared;
    }
  }
  EXPECT_GT(static_cast<double>(shared) /
                static_cast<double>(result.sites.size()),
            0.5);
}


TEST_F(PipelineFixture, ProcessFailurePropagatesWithResourceDiagnostic) {
  // A process that finishes without defining its output is a programming
  // error the pipeline must surface with the resource name.
  class ForgetfulProcess final : public Process {
   public:
    ForgetfulProcess(ValueResource<int>* out)
        : Process("Forgetful", {}, {out}) {}

   private:
    void run(PipelineContext&) override {}  // forgets to set the output
  };
  Pipeline pipeline("p", engine, reference);
  auto* out = pipeline.add_resource(ValueResource<int>::make_undefined(
      "forgotten_output"));
  pipeline.add_process(std::make_unique<ForgetfulProcess>(out));
  try {
    pipeline.run();
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("forgotten_output"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Forgetful"), std::string::npos);
  }
}

}  // namespace
}  // namespace gpf::core
