// Tests for the synthetic data generators: reference, variants, donor
// haplotypes, quality model, read simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "simdata/quality_model.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"
#include "simdata/variant_gen.hpp"

namespace gpf::simdata {
namespace {

TEST(ReferenceGen, RespectsContigSpec) {
  ReferenceSpec spec;
  spec.contigs = {{"c1", 10000}, {"c2", 5000}};
  const Reference ref = generate_reference(spec);
  ASSERT_EQ(ref.contig_count(), 2u);
  EXPECT_EQ(ref.contig(0).name, "c1");
  EXPECT_EQ(ref.contig(0).sequence.size(), 10000u);
  EXPECT_EQ(ref.contig(1).sequence.size(), 5000u);
}

TEST(ReferenceGen, Deterministic) {
  const auto spec = ReferenceSpec::single(5000, 9);
  EXPECT_EQ(generate_reference(spec).contig(0).sequence,
            generate_reference(spec).contig(0).sequence);
}

TEST(ReferenceGen, GcContentApproximatelyRespected) {
  auto spec = ReferenceSpec::single(200000, 5);
  spec.gc_content = 0.41;
  spec.repeat_rate = 0.0;  // repeats skew composition
  spec.gap_rate = 0.0;
  const Reference ref = generate_reference(spec);
  std::size_t gc = 0;
  for (const char c : ref.contig(0).sequence) {
    if (c == 'G' || c == 'C') ++gc;
  }
  const double frac = static_cast<double>(gc) / 200000.0;
  EXPECT_NEAR(frac, 0.41, 0.02);
}

TEST(ReferenceGen, GenomePresetDecreasingSizes) {
  const auto spec = ReferenceSpec::genome(1'000'000, 5);
  ASSERT_EQ(spec.contigs.size(), 5u);
  for (std::size_t i = 1; i < spec.contigs.size(); ++i) {
    EXPECT_GE(spec.contigs[i - 1].second, spec.contigs[i].second);
  }
}

TEST(ReferenceGen, OnlyValidBases) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(50000, 17));
  for (const char c : ref.contig(0).sequence) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'N')
        << c;
  }
}

TEST(ReverseComplement, Basic) {
  EXPECT_EQ(reverse_complement("ACGTN"), "NACGT");
  EXPECT_EQ(reverse_complement(""), "");
  EXPECT_EQ(reverse_complement(reverse_complement("GATTACA")), "GATTACA");
}

TEST(VariantGen, RatesApproximatelyRespected) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(500'000, 3));
  VariantSpec spec;
  spec.snp_rate = 0.002;
  spec.indel_rate = 0.0002;
  const auto truth = spawn_variants(ref, spec);
  std::size_t snps = 0, indels = 0;
  for (const auto& v : truth) {
    if (v.is_snp()) {
      ++snps;
    } else {
      ++indels;
    }
  }
  EXPECT_NEAR(static_cast<double>(snps) / 500'000.0, 0.002, 0.0005);
  EXPECT_NEAR(static_cast<double>(indels) / 500'000.0, 0.0002, 0.0001);
}

TEST(VariantGen, SortedAndNonOverlapping) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(200'000, 7));
  const auto truth = spawn_variants(ref, {});
  for (std::size_t i = 1; i < truth.size(); ++i) {
    const auto& prev = truth[i - 1];
    const auto& cur = truth[i];
    if (prev.contig_id == cur.contig_id) {
      EXPECT_GE(cur.pos,
                prev.pos + static_cast<std::int64_t>(prev.ref.size()));
    }
  }
}

TEST(VariantGen, RefFieldMatchesReference) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(100'000, 21));
  const auto truth = spawn_variants(ref, {});
  ASSERT_FALSE(truth.empty());
  for (const auto& v : truth) {
    EXPECT_EQ(ref.slice(v.contig_id, v.pos,
                        static_cast<std::int64_t>(v.ref.size())),
              v.ref);
  }
}

TEST(Donor, HomAltSnpAppearsInBothHaplotypes) {
  Reference ref(std::vector<FastaContig>{{"c", "AAAAAAAAAA"}});
  VcfRecord snp{0, 4, ".", "A", "G", 50.0, Genotype::kHomAlt};
  const Donor donor(ref, {snp});
  EXPECT_EQ(donor.haplotype(0, 0)[4], 'G');
  EXPECT_EQ(donor.haplotype(0, 1)[4], 'G');
}

TEST(Donor, HetSnpOnlyInHaplotypeZero) {
  Reference ref(std::vector<FastaContig>{{"c", "AAAAAAAAAA"}});
  VcfRecord snp{0, 4, ".", "A", "G", 50.0, Genotype::kHet};
  const Donor donor(ref, {snp});
  EXPECT_EQ(donor.haplotype(0, 0)[4], 'G');
  EXPECT_EQ(donor.haplotype(0, 1)[4], 'A');
}

TEST(Donor, InsertionShiftsCoordinates) {
  Reference ref(std::vector<FastaContig>{{"c", "AAAAAAAAAA"}});
  VcfRecord ins{0, 3, ".", "A", "ATT", 50.0, Genotype::kHomAlt};
  const Donor donor(ref, {ins});
  EXPECT_EQ(donor.haplotype(0, 0).size(), 12u);
  // Donor position 10 maps back to reference position 8.
  EXPECT_EQ(donor.to_reference(0, 0, 10), 8);
  // Positions before the indel are unshifted.
  EXPECT_EQ(donor.to_reference(0, 0, 2), 2);
}

TEST(Donor, DeletionShiftsCoordinates) {
  Reference ref(std::vector<FastaContig>{{"c", "AAAAACCCCC"}});
  VcfRecord del{0, 2, ".", "AAA", "A", 50.0, Genotype::kHomAlt};
  const Donor donor(ref, {del});
  EXPECT_EQ(donor.haplotype(0, 0).size(), 8u);
  EXPECT_EQ(donor.to_reference(0, 0, 5), 7);
}

TEST(QualityModel, ScoresWithinConfiguredRange) {
  Rng rng(3);
  const auto profile = QualityProfile::srr622461();
  for (int i = 0; i < 50; ++i) {
    const std::string q = profile.sample_read(rng, 100);
    ASSERT_EQ(q.size(), 100u);
    for (const char c : q) {
      ASSERT_GE(c, profile.min_quality);
      ASSERT_LE(c, profile.max_quality);
    }
  }
}

TEST(QualityModel, Fig5DistributionShape) {
  // Paper Fig 5: raw scores concentrated in a high band; adjacent deltas
  // overwhelmingly within [-10, 10] with a spike at 0.
  const auto dist =
      collect_distributions(QualityProfile::srr622461(), 2000, 100, 99);
  EXPECT_GT(dist.scores.mean(), 60.0);
  std::uint64_t near_zero = 0;
  for (int d = -10; d <= 10; ++d) near_zero += dist.deltas.count(d);
  EXPECT_GT(static_cast<double>(near_zero) /
                static_cast<double>(dist.deltas.total()),
            0.9);
  EXPECT_GT(dist.deltas.fraction(0), 0.15);
}

TEST(QualityModel, ProfilesDiffer) {
  const auto a =
      collect_distributions(QualityProfile::srr622461(), 500, 100, 1);
  const auto b =
      collect_distributions(QualityProfile::srr504516(), 500, 100, 1);
  EXPECT_GT(a.scores.mean(), b.scores.mean());
}

TEST(ReadSim, PairCountMatchesCoverage) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(100'000, 11));
  const Donor donor(ref, {});
  ReadSimSpec spec;
  spec.coverage = 10.0;
  spec.read_length = 100;
  spec.duplicate_fraction = 0.0;
  const auto sample = simulate_reads(ref, donor, spec);
  EXPECT_NEAR(static_cast<double>(sample.pairs.size()), 5000.0, 50.0);
}

TEST(ReadSim, ReadsMatchDonorSequence) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(50'000, 13));
  const Donor donor(ref, {});
  ReadSimSpec spec;
  spec.coverage = 2.0;
  // Max quality = tiny error rate, so reads should match the donor nearly
  // everywhere.
  spec.quality.start_quality = 74.0;
  spec.quality.dropout_rate = 0.0;
  spec.quality.walk_sigma = 0.0;
  spec.quality.decay_per_cycle = 0.0;
  const auto sample = simulate_reads(ref, donor, spec);
  ASSERT_FALSE(sample.pairs.empty());
  // Parse the truth position from the read name and compare to the
  // reference.
  int checked = 0;
  for (const auto& pair : sample.pairs) {
    const auto& name = pair.first.name;
    const auto p1 = name.find(':');
    const auto p2 = name.find(':', p1 + 1);
    const auto p3 = name.find(':', p2 + 1);
    const std::int64_t pos =
        std::stoll(name.substr(p2 + 1, p3 - p2 - 1));
    const std::string_view expected = ref.slice(0, pos, 100);
    int mismatches = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (pair.first.sequence[i] != expected[i]) ++mismatches;
    }
    EXPECT_LT(mismatches, 10);
    if (++checked > 20) break;
  }
}

TEST(ReadSim, DuplicatesApproximatelyAtConfiguredRate) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(100'000, 15));
  const Donor donor(ref, {});
  ReadSimSpec spec;
  spec.coverage = 10.0;
  spec.duplicate_fraction = 0.10;
  const auto sample = simulate_reads(ref, donor, spec);
  const double rate = static_cast<double>(sample.duplicate_pairs) /
                      static_cast<double>(sample.pairs.size());
  EXPECT_NEAR(rate, 0.10, 0.02);
}

TEST(ReadSim, HotspotsSkewCoverage) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(500'000, 19));
  const Donor donor(ref, {});
  ReadSimSpec uniform;
  uniform.coverage = 5.0;
  uniform.seed = 7;
  ReadSimSpec skewed = uniform;
  skewed.hotspot_fraction = 0.02;
  skewed.hotspot_multiplier = 50.0;

  auto depth_histogram = [&](const ReadSimSpec& spec) {
    const auto sample = simulate_reads(ref, donor, spec);
    std::vector<std::size_t> counts(10, 0);  // 50kb buckets
    for (const auto& pair : sample.pairs) {
      const auto& name = pair.first.name;
      const auto p1 = name.find(':');
      const auto p2 = name.find(':', p1 + 1);
      const auto p3 = name.find(':', p2 + 1);
      const std::int64_t pos = std::stoll(name.substr(p2 + 1, p3 - p2 - 1));
      ++counts[std::min<std::size_t>(9, static_cast<std::size_t>(pos / 50'000))];
    }
    return counts;
  };
  const auto flat = depth_histogram(uniform);
  const auto hot = depth_histogram(skewed);
  auto imbalance = [](const std::vector<std::size_t>& counts) {
    const std::size_t max = *std::max_element(counts.begin(), counts.end());
    std::size_t total = 0;
    for (const auto c : counts) total += c;
    return static_cast<double>(max) * counts.size() /
           static_cast<double>(total);
  };
  EXPECT_GT(imbalance(hot), imbalance(flat) * 1.5);
}

TEST(ReadSim, WorkloadBuilderProducesConsistentPieces) {
  ReadSimSpec spec;
  spec.coverage = 3.0;
  const Workload w = make_workload(100'000, 2, spec);
  EXPECT_EQ(w.reference.contig_count(), 2u);
  EXPECT_FALSE(w.truth.empty());
  EXPECT_FALSE(w.sample.pairs.empty());
}


TEST(QualityModel, BinnedProfileUsesOnlyBinValues) {
  Rng rng(307);
  const auto profile = QualityProfile::novaseq_binned();
  const std::string q = profile.sample_read(rng, 200);
  std::set<char> distinct(q.begin(), q.end());
  EXPECT_LE(distinct.size(), 8u);
  for (const char c : distinct) {
    EXPECT_EQ(c, QualityProfile::bin_quality(c));  // bins are fixed points
  }
}

TEST(QualityModel, BinQualityMapsToNearestRepresentative) {
  EXPECT_EQ(QualityProfile::bin_quality(static_cast<char>(33 + 2)), 33 + 2);
  EXPECT_EQ(QualityProfile::bin_quality(static_cast<char>(33 + 13)),
            33 + 12);
  EXPECT_EQ(QualityProfile::bin_quality(static_cast<char>(33 + 40)),
            33 + 41);
  EXPECT_EQ(QualityProfile::bin_quality(static_cast<char>(33 + 90)),
            33 + 45);
}

TEST(QualityModel, BinnedQualitiesHaveFewerDeltaSymbols) {
  const auto raw =
      collect_distributions(QualityProfile::srr622461(), 500, 100, 7);
  const auto binned =
      collect_distributions(QualityProfile::novaseq_binned(), 500, 100, 7);
  EXPECT_LT(binned.deltas.buckets().size(), raw.deltas.buckets().size());
}


TEST(ReadSim, CaptureTargetsConcentrateCoverage) {
  const Reference ref =
      generate_reference(ReferenceSpec::single(200'000, 521));
  const Donor donor(ref, {});
  ReadSimSpec spec;
  spec.coverage = 6.0;
  spec.seed = 523;
  spec.targets = {{0, 50'000, 60'000, "exon1"}, {0, 120'000, 130'000, "exon2"}};
  spec.on_target_fraction = 0.95;
  const auto sample = simulate_reads(ref, donor, spec);
  ASSERT_FALSE(sample.pairs.empty());
  const IntervalSet targets(spec.targets);
  std::size_t on = 0;
  for (const auto& pair : sample.pairs) {
    const auto& name = pair.first.name;
    const auto p1 = name.find(':');
    const auto p2 = name.find(':', p1 + 1);
    const auto p3 = name.find(':', p2 + 1);
    const std::int64_t pos = std::stoll(name.substr(p2 + 1, p3 - p2 - 1));
    if (targets.overlaps(0, pos, pos + 350)) ++on;
  }
  const double fraction =
      static_cast<double>(on) / static_cast<double>(sample.pairs.size());
  // 10% of the genome is targeted but should receive the large majority
  // of fragments.
  EXPECT_GT(fraction, 0.8);
  EXPECT_LT(fraction, 1.0);  // capture leakage exists
}

}  // namespace
}  // namespace gpf::simdata
