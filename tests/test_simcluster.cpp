// Tests for the trace-driven cluster simulator and the shared-filesystem
// model.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/metrics.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/sharedfs.hpp"
#include "simcluster/trace.hpp"

namespace gpf::sim {
namespace {

SimJob uniform_job(std::size_t stages, std::size_t tasks_per_stage,
                   double task_seconds, std::uint64_t disk = 0,
                   std::uint64_t net = 0) {
  SimJob job;
  for (std::size_t s = 0; s < stages; ++s) {
    SimStage stage;
    stage.name = "stage" + std::to_string(s);
    stage.phase = "phase";
    stage.tasks.assign(tasks_per_stage, {task_seconds, disk, net});
    job.stages.push_back(std::move(stage));
  }
  return job;
}

TEST(ClusterSim, PerfectScalingForUniformTasks) {
  const SimJob job = uniform_job(1, 1024, 1.0);
  ClusterConfig small = ClusterConfig::with_cores(128);
  ClusterConfig big = ClusterConfig::with_cores(1024);
  const double t_small = simulate(job, small).makespan;
  const double t_big = simulate(job, big).makespan;
  // 8x cores -> ~8x faster for an embarrassingly-parallel uniform stage.
  EXPECT_NEAR(t_small / t_big, 8.0, 0.5);
}

TEST(ClusterSim, SkewLimitsScaling) {
  // One whale task dominates: scaling stalls at the whale's duration.
  SimJob job = uniform_job(1, 512, 0.1);
  job.stages[0].tasks[0].compute_seconds = 20.0;
  const double t = simulate(job, ClusterConfig::with_cores(2048)).makespan;
  EXPECT_GE(t, 20.0);
  EXPECT_LT(t, 21.0);
}

TEST(ClusterSim, MakespanNeverBelowCriticalPath) {
  const SimJob job = uniform_job(4, 64, 0.5);
  const auto result = simulate(job, ClusterConfig::with_cores(10240));
  // 4 stage barriers, each at least one task long.
  EXPECT_GE(result.makespan, 4 * 0.5);
}

TEST(ClusterSim, DiskBytesIncreaseMakespan) {
  const SimJob no_io = uniform_job(1, 256, 0.5);
  const SimJob with_io = uniform_job(1, 256, 0.5, 50'000'000);
  const ClusterConfig cluster = ClusterConfig::with_cores(256);
  EXPECT_GT(simulate(with_io, cluster).makespan,
            simulate(no_io, cluster).makespan);
}

TEST(ClusterSim, BlockedTimeAnalysisBounds) {
  const SimJob job = uniform_job(2, 256, 0.5, 10'000'000, 5'000'000);
  const auto r = blocked_time_analysis(job, ClusterConfig::with_cores(256));
  EXPECT_GT(r.disk_improvement(), 0.0);
  EXPECT_LT(r.disk_improvement(), 1.0);
  EXPECT_GT(r.net_improvement(), 0.0);
  EXPECT_LE(r.no_disk_makespan, r.base_makespan);
  EXPECT_LE(r.no_net_makespan, r.base_makespan);
}

TEST(ClusterSim, CpuBoundJobHasTinyBlockedImprovement) {
  // The paper's Fig 12 conclusion: compute-dominated stages see <5%
  // improvement from removing I/O.
  const SimJob job = uniform_job(1, 512, 2.0, 100'000, 50'000);
  const auto r = blocked_time_analysis(job, ClusterConfig::with_cores(512));
  EXPECT_LT(r.disk_improvement(), 0.05);
  EXPECT_LT(r.net_improvement(), 0.05);
}

TEST(ClusterSim, UtilizationTimelineShape) {
  const SimJob job = uniform_job(1, 512, 1.0, 1'000'000);
  const auto samples =
      utilization_timeline(job, ClusterConfig::with_cores(256), 20);
  ASSERT_EQ(samples.size(), 20u);
  // Middle of the run: CPU busy.
  EXPECT_GT(samples[5].cpu_fraction, 0.5);
  for (const auto& s : samples) {
    EXPECT_GE(s.cpu_fraction, 0.0);
    EXPECT_LE(s.cpu_fraction, 1.0);
  }
}

TEST(ClusterSim, UtilizationTimelineExactBoundaryConservation) {
  // 8 uniform 1s tasks on 4 cores with zero overhead: two full waves, so
  // every task edge — including the final one — lands exactly on a bucket
  // boundary and on the makespan.  Regression: the last bucket's right
  // edge was width*buckets, which can fall a hair short of the makespan
  // and drop the final sliver of work.
  SimJob job = uniform_job(1, 8, 1.0);
  ClusterConfig cluster = ClusterConfig::with_cores(4);
  cluster.task_overhead = 0.0;
  const double makespan = simulate(job, cluster).makespan;
  EXPECT_DOUBLE_EQ(makespan, 2.0);

  const auto samples = utilization_timeline(job, cluster, 4);
  ASSERT_EQ(samples.size(), 4u);
  const double width = makespan / 4.0;
  double core_seconds = 0.0;
  for (const auto& s : samples) {
    EXPECT_NEAR(s.cpu_fraction, 1.0, 1e-9);
    core_seconds += s.cpu_fraction * width * 4.0;
  }
  // All 8 task-seconds accounted for, none lost at the boundaries.
  EXPECT_NEAR(core_seconds, 8.0, 1e-9);
}

TEST(ClusterSim, UtilizationTimelineSingleBucket) {
  SimJob job = uniform_job(2, 16, 0.5);
  ClusterConfig cluster = ClusterConfig::with_cores(8);
  cluster.task_overhead = 0.0;
  const auto samples = utilization_timeline(job, cluster, 1);
  ASSERT_EQ(samples.size(), 1u);
  const double makespan = simulate(job, cluster).makespan;
  // 16 task-seconds over makespan * 8 cores.
  EXPECT_NEAR(samples[0].cpu_fraction, 16.0 / (makespan * 8.0), 1e-9);
}

TEST(ClusterSim, UtilizationTimelineCountsColdDiskBytes) {
  // Regression: cold stage-file bytes contributed disk *time* but not
  // disk *bytes*, so a cold-disk-only job showed a flat-zero disk
  // timeline.
  SimJob job = uniform_job(1, 64, 0.1);
  for (auto& t : job.stages[0].tasks) t.cold_disk_bytes = 10'000'000;
  const ClusterConfig cluster = ClusterConfig::with_cores(64);
  const std::size_t buckets = 10;
  const auto samples = utilization_timeline(job, cluster, buckets);
  const double makespan = simulate(job, cluster).makespan;
  const double width = makespan / static_cast<double>(buckets);
  double deposited = 0.0;
  for (const auto& s : samples) deposited += s.disk_bytes_per_s * width;
  // Every cold byte shows up in the timeline, conserved across buckets.
  EXPECT_NEAR(deposited, 64.0 * 10'000'000.0, 1.0);
}

TEST(ClusterSim, SimulateToSpansMatchesSchedule) {
  const SimJob job = uniform_job(2, 16, 1.0);
  const ClusterConfig cluster = ClusterConfig::with_cores(4);
  const auto spans = simulate_to_spans(job, cluster);
  // One span per task plus one per stage.
  ASSERT_EQ(spans.size(), 2u * 16u + 2u);
  const auto result = simulate(job, cluster);
  double last_end_us = 0.0;
  std::size_t stage_spans = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.pid, 1u);
    if (s.kind == trace::SpanKind::kSimStage) {
      ++stage_spans;
      EXPECT_EQ(s.track, 0u);
    } else {
      EXPECT_EQ(s.kind, trace::SpanKind::kSimTask);
      // Task tracks are core slots offset past the driver track.
      EXPECT_GE(s.track, 1u);
      EXPECT_LE(s.track, cluster.total_cores());
    }
    last_end_us = std::max(last_end_us, s.start_us + s.dur_us);
  }
  EXPECT_EQ(stage_spans, 2u);
  EXPECT_NEAR(last_end_us, result.makespan * 1e6, 1e-3);
}

TEST(ClusterSim, ReplicateTasksScalesWork) {
  const SimJob job = uniform_job(2, 16, 1.0);
  const SimJob big = replicate_tasks(job, 4);
  EXPECT_EQ(big.stages[0].tasks.size(), 64u);
  EXPECT_NEAR(big.total_compute_seconds(), 4 * job.total_compute_seconds(),
              1e-9);
}

TEST(ClusterSim, ScaleJobScalesBytesAndCompute) {
  const SimJob job = uniform_job(1, 8, 2.0, 1000, 500);
  const SimJob scaled = scale_job(job, 0.5, 3.0);
  EXPECT_DOUBLE_EQ(scaled.stages[0].tasks[0].compute_seconds, 1.0);
  EXPECT_EQ(scaled.stages[0].tasks[0].disk_bytes, 3000u);
  EXPECT_EQ(scaled.stages[0].tasks[0].net_bytes, 1500u);
}

TEST(ClusterSim, WithCoresSmallCounts) {
  const auto c = ClusterConfig::with_cores(4);
  EXPECT_EQ(c.total_cores(), 4u);
  const auto big = ClusterConfig::with_cores(2048);
  EXPECT_EQ(big.total_cores(), 2048u);
}

TEST(ClusterSim, CoreHoursAccounting) {
  const SimJob job = uniform_job(1, 256, 1.0);
  const ClusterConfig cluster = ClusterConfig::with_cores(256);
  const auto result = simulate(job, cluster);
  EXPECT_NEAR(result.core_hours(cluster),
              result.makespan * 256.0 / 3600.0, 1e-9);
}

// --- trace conversion -------------------------------------------------------

TEST(Trace, NarrowStageBecomesComputeOnly) {
  engine::EngineMetrics metrics;
  engine::StageMetrics stage;
  stage.name = "aligner.map";
  stage.task_count = 4;
  stage.task_seconds = {1.0, 2.0, 3.0, 4.0};
  metrics.add_stage(stage);

  const SimJob job = trace_job(metrics);
  ASSERT_EQ(job.stages.size(), 1u);
  EXPECT_EQ(job.stages[0].phase, "aligner");
  EXPECT_EQ(job.stages[0].tasks.size(), 4u);
  EXPECT_EQ(job.stages[0].tasks[0].disk_bytes, 0u);
  EXPECT_DOUBLE_EQ(job.stages[0].tasks[3].compute_seconds, 4.0);
}

TEST(Trace, WideStageSplitsBytesBetweenMapAndReduce) {
  engine::EngineMetrics metrics;
  engine::StageMetrics stage;
  stage.name = "cleaner.shuffle";
  stage.task_count = 4;
  stage.task_seconds = {1.0, 1.0, 1.0, 1.0};
  stage.wide = true;
  stage.map_task_count = 2;
  stage.shuffle_write_bytes = 1000;
  stage.shuffle_read_bytes = 1000;
  metrics.add_stage(stage);

  const SimJob job = trace_job(metrics);
  const auto& tasks = job.stages[0].tasks;
  // Map tasks write to disk only.
  EXPECT_EQ(tasks[0].disk_bytes, 500u);
  EXPECT_EQ(tasks[0].net_bytes, 0u);
  // Reduce tasks read from disk and network.
  EXPECT_EQ(tasks[2].disk_bytes, 500u);
  EXPECT_GT(tasks[2].net_bytes, 0u);
}

TEST(Trace, ScalesComputeAndBytes) {
  engine::EngineMetrics metrics;
  engine::StageMetrics stage;
  stage.name = "x";
  stage.task_count = 1;
  stage.task_seconds = {2.0};
  stage.input_bytes = 100;
  metrics.add_stage(stage);

  TraceOptions options;
  options.compute_scale = 3.0;
  options.bytes_scale = 10.0;
  const SimJob job = trace_job(metrics, options);
  EXPECT_DOUBLE_EQ(job.stages[0].tasks[0].compute_seconds, 6.0);
  // Stage input bytes are cold file traffic (spindle rate).
  EXPECT_EQ(job.stages[0].tasks[0].cold_disk_bytes, 1000u);
  EXPECT_EQ(job.stages[0].tasks[0].disk_bytes, 0u);
}

// --- shared filesystem --------------------------------------------------------

std::vector<FilePipelineStep> wgs_like_steps() {
  // A 100GB-class WGS pipeline: ~2 CPU-hours of work, ~45GB of stage-file
  // traffic (the regime of the paper's Table 1 measurement).
  return {
      {"align", 3600.0, 8'000'000'000ULL, 9'000'000'000ULL},
      {"sort", 1200.0, 9'000'000'000ULL, 9'000'000'000ULL},
      {"call", 2400.0, 9'000'000'000ULL, 500'000'000ULL},
  };
}

TEST(SharedFs, IoFractionGrowsWithSamples) {
  // The Table 1 effect: more concurrent samples -> each gets less
  // filesystem bandwidth -> I/O share of runtime grows.
  const auto steps = wgs_like_steps();
  const auto fs = SharedFsConfig::lustre();
  const auto one = run_file_pipeline(steps, 1, 96, fs);
  const auto thirty = run_file_pipeline(steps, 30, 16, fs);
  EXPECT_LT(one.io_fraction(), thirty.io_fraction());
  EXPECT_GT(thirty.io_fraction(), 0.5);
  EXPECT_LT(one.io_fraction(), 0.4);
}

TEST(SharedFs, NfsWorseThanLustreUnderLoad) {
  const auto steps = wgs_like_steps();
  const auto lustre =
      run_file_pipeline(steps, 30, 16, SharedFsConfig::lustre());
  const auto nfs = run_file_pipeline(steps, 30, 16, SharedFsConfig::nfs());
  EXPECT_GT(nfs.io_fraction(), lustre.io_fraction());
}

TEST(SharedFs, ZeroSamplesIsEmptyResult) {
  const auto r = run_file_pipeline(wgs_like_steps(), 0, 16,
                                   SharedFsConfig::lustre());
  EXPECT_DOUBLE_EQ(r.total_seconds, 0.0);
}

TEST(SharedFs, PerClientCapLimitsSingleSample) {
  // With one client, bandwidth is the per-client cap, not the aggregate.
  SharedFsConfig fs;
  fs.aggregate_bw = 100e9;
  fs.per_client_bw = 1e9;
  fs.concurrency_efficiency = 1.0;
  const std::vector<FilePipelineStep> steps = {{"io", 0.0, 1'000'000'000ULL,
                                                0}};
  const auto r = run_file_pipeline(steps, 1, 8, fs);
  EXPECT_NEAR(r.io_seconds, 1.0, 1e-9);
}

}  // namespace
}  // namespace gpf::sim
