// Tests for the alignment substrate: suffix array, FM-index,
// Smith-Waterman, the BWA-MEM-like aligner and the SNAP-like hash aligner.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "align/hash_aligner.hpp"
#include "align/smith_waterman.hpp"
#include "align/suffix_array.hpp"
#include "common/rng.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"

namespace gpf::align {
namespace {

// --- suffix array ------------------------------------------------------------

std::vector<std::uint32_t> naive_suffix_array(
    const std::vector<std::uint8_t>& text) {
  std::vector<std::uint32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
    return std::lexicographical_compare(text.begin() + a, text.end(),
                                        text.begin() + b, text.end());
  });
  return sa;
}

TEST(SuffixArray, MatchesNaiveOnBanana) {
  const std::string s = "banana";
  std::vector<std::uint8_t> text(s.begin(), s.end());
  text.push_back(0);
  EXPECT_EQ(build_suffix_array(text), naive_suffix_array(text));
}

TEST(SuffixArray, MatchesNaiveOnRandomTexts) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.below(500);
    std::vector<std::uint8_t> text(n);
    // Small alphabet with repeated zeros — the hardest case for doubling
    // implementations (multiple identical separators).
    for (auto& c : text) c = static_cast<std::uint8_t>(rng.below(4));
    ASSERT_EQ(build_suffix_array(text), naive_suffix_array(text))
        << "trial " << trial;
  }
}

TEST(SuffixArray, EmptyText) {
  EXPECT_TRUE(build_suffix_array({}).empty());
}

TEST(SuffixArray, BwtFollowsDefinition) {
  const std::string s = "mississippi";
  std::vector<std::uint8_t> text(s.begin(), s.end());
  text.push_back(0);
  const auto sa = build_suffix_array(text);
  const auto bwt = bwt_from_suffix_array(text, sa);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    const std::uint8_t expected =
        sa[i] == 0 ? text.back() : text[sa[i] - 1];
    EXPECT_EQ(bwt[i], expected);
  }
}

// --- FM-index ------------------------------------------------------------------

Reference small_reference() {
  return simdata::generate_reference(
      simdata::ReferenceSpec::genome(120'000, 3, 77));
}

TEST(FmIndex, FindsEverySampledSubstring) {
  const Reference ref = small_reference();
  const FmIndex index(ref);
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    const auto cid = static_cast<std::int32_t>(rng.below(ref.contig_count()));
    const auto& seq = ref.contig(cid).sequence;
    const std::size_t len = 20 + rng.below(30);
    if (seq.size() < len + 1) continue;
    const std::size_t pos = rng.below(seq.size() - len);
    const std::string pattern = seq.substr(pos, len);
    if (pattern.find('N') != std::string::npos) continue;
    const SaInterval iv = index.search(pattern);
    ASSERT_FALSE(iv.empty()) << pattern;
    // One of the hits must be the sampled position.
    bool found = false;
    for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
      const RefPosition rp = index.locate(row);
      if (rp.contig_id == cid &&
          rp.offset == static_cast<std::int64_t>(pos)) {
        found = true;
      }
      // Every hit must actually match the pattern.
      if (rp.contig_id >= 0) {
        EXPECT_EQ(ref.slice(rp.contig_id, rp.offset,
                            static_cast<std::int64_t>(len)),
                  pattern);
      }
    }
    EXPECT_TRUE(found) << "hit list missed source position";
  }
}

TEST(FmIndex, AbsentPatternReturnsEmpty) {
  Reference ref(std::vector<FastaContig>{{"c", "ACACACACACACACACAC"}});
  const FmIndex index(ref);
  EXPECT_TRUE(index.search("GGGGG").empty());
}

TEST(FmIndex, PatternWithNNeverMatches) {
  Reference ref(std::vector<FastaContig>{{"c", "ACGTACGTACGT"}});
  const FmIndex index(ref);
  EXPECT_TRUE(index.search("ACGN").empty());
}

TEST(FmIndex, CrossContigMatchesExcluded) {
  // A pattern spanning the end of contig 1 and start of contig 2 must not
  // match, thanks to the separator.
  Reference ref(std::vector<FastaContig>{{"c1", "AAAACCCC"}, {"c2", "GGGGTTTT"}});
  const FmIndex index(ref);
  EXPECT_TRUE(index.search("CCCCGGGG").empty());
  EXPECT_FALSE(index.search("CCCC").empty());
  EXPECT_FALSE(index.search("GGGG").empty());
}

// --- Smith-Waterman ---------------------------------------------------------

TEST(SmithWaterman, PerfectMatchGlobal) {
  const auto r = banded_global("ACGTACGT", "ACGTACGT", {}, 8);
  EXPECT_EQ(r.score, 8);
  EXPECT_EQ(cigar_to_string(r.cigar), "8M");
  EXPECT_EQ(r.mismatches, 0);
}

TEST(SmithWaterman, GlobalWithMismatch) {
  const auto r = banded_global("ACGTACGT", "ACGAACGT", {}, 8);
  EXPECT_EQ(cigar_to_string(r.cigar), "8M");
  EXPECT_EQ(r.mismatches, 1);
  EXPECT_EQ(r.score, 7 * 1 + 1 * -4);
}

TEST(SmithWaterman, GlobalWithDeletion) {
  // Query lacks 2 bases present in ref.
  const auto r = banded_global("AAAATTTT", "AAAACCTTTT", {}, 8);
  EXPECT_EQ(cigar_to_string(r.cigar), "4M2D4M");
}

TEST(SmithWaterman, GlobalWithInsertion) {
  const auto r = banded_global("AAAACCTTTT", "AAAATTTT", {}, 8);
  EXPECT_EQ(cigar_to_string(r.cigar), "4M2I4M");
}

TEST(SmithWaterman, AffineGapPreferredOverScattered) {
  // One 3-base gap should beat three scattered 1-base gaps under affine
  // scoring: verify the CIGAR has a single indel run.
  const auto r = banded_global("AAAAAAAATTTTTTTT", "AAAAAAAACCCTTTTTTTT", {},
                               12);
  int indel_runs = 0;
  for (const auto& el : r.cigar) {
    if (el.op == CigarOp::kDeletion || el.op == CigarOp::kInsertion) {
      ++indel_runs;
    }
  }
  EXPECT_EQ(indel_runs, 1);
}

TEST(SmithWaterman, GlocalFindsEmbeddedQuery) {
  const std::string ref = "TTTTTTTTTTACGTACGTACGTTTTTTTTTT";
  const auto r = glocal("ACGTACGTACGT", ref, {}, 8);
  EXPECT_EQ(r.score, 12);
  EXPECT_EQ(r.ref_start, 10);
  EXPECT_EQ(r.query_start, 0);
  EXPECT_EQ(cigar_to_string(r.cigar), "12M");
}

TEST(SmithWaterman, GlocalSoftClipsGarbageEnds) {
  // Query has 4 junk bases at the front that should not align ("GA" and
  // "GG" never occur in the ACGT-repeat reference, so no prefix base can
  // profitably extend the local alignment).
  const std::string ref = "ACGTACGTACGTACGTACGT";
  const auto r = glocal("GGGGACGTACGTACGT", ref, {}, 8);
  EXPECT_EQ(r.query_start, 4);
  EXPECT_EQ(r.query_end, 16);
}

TEST(SmithWaterman, GlocalNoMatchReturnsEmpty) {
  const auto r = glocal("AAAA", "TTTT", {}, 4);
  EXPECT_TRUE(r.cigar.empty());
}

TEST(SmithWaterman, EmptyInputs) {
  EXPECT_THROW(banded_global("", "ACGT", {}, 4), std::invalid_argument);
  EXPECT_TRUE(glocal("", "ACGT", {}, 4).cigar.empty());
}

/// The banded-workspace kernels must reproduce the original full-matrix DP
/// exactly: same score, same span, same CIGAR, same mismatch count.
void expect_same_alignment(const AlignmentResult& fast,
                           const AlignmentResult& slow,
                           const std::string& label) {
  EXPECT_EQ(fast.score, slow.score) << label;
  EXPECT_EQ(fast.query_start, slow.query_start) << label;
  EXPECT_EQ(fast.query_end, slow.query_end) << label;
  EXPECT_EQ(fast.ref_start, slow.ref_start) << label;
  EXPECT_EQ(fast.ref_end, slow.ref_end) << label;
  EXPECT_EQ(fast.mismatches, slow.mismatches) << label;
  EXPECT_EQ(cigar_to_string(fast.cigar), cigar_to_string(slow.cigar))
      << label;
}

TEST(SmithWaterman, WorkspaceMatchesReferenceOnFuzzedPairs) {
  Rng rng(181);
  const char bases[] = {'A', 'C', 'G', 'T'};
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t rlen = 8 + rng.below(120);
    std::string ref(rlen, 'A');
    for (auto& c : ref) c = bases[rng.below(4)];
    const std::size_t qlen = 1 + rng.below(rlen);
    std::string query = ref.substr(rng.below(rlen - qlen + 1), qlen);
    // Mutations: substitutions plus an occasional 1-base indel.
    for (int m = 0; m < 4; ++m) {
      query[rng.below(query.size())] = bases[rng.below(4)];
    }
    if (rng.below(3) == 0 && query.size() > 3) {
      query.erase(rng.below(query.size() - 1), 1);
    }
    if (rng.below(3) == 0) {
      query.insert(rng.below(query.size()), 1, bases[rng.below(4)]);
    }
    const int band = 1 + static_cast<int>(rng.below(16));
    const std::string label = "trial " + std::to_string(trial) + " band " +
                              std::to_string(band);
    expect_same_alignment(
        banded_global(query, ref, {}, band),
        detail::banded_global_reference(query, ref, {}, band),
        "global " + label);
    expect_same_alignment(glocal(query, ref, {}, band),
                          detail::glocal_reference(query, ref, {}, band),
                          "glocal " + label);
  }
}

TEST(SmithWaterman, WorkspaceMatchesReferenceOnEdgeShapes) {
  // Degenerate shapes: single-base inputs, query longer than ref, band
  // wider than both sequences, band of 1.
  const struct {
    const char* query;
    const char* ref;
    int band;
  } cases[] = {
      {"A", "A", 1},         {"A", "T", 1},
      {"ACGT", "A", 8},      {"A", "ACGT", 8},
      {"ACGTACGT", "TGCA", 2}, {"ACACACAC", "ACACACAC", 64},
      {"GGGG", "CCCC", 1},
  };
  for (const auto& c : cases) {
    const std::string label =
        std::string(c.query) + "/" + c.ref + " band " + std::to_string(c.band);
    expect_same_alignment(
        banded_global(c.query, c.ref, {}, c.band),
        detail::banded_global_reference(c.query, c.ref, {}, c.band),
        "global " + label);
    expect_same_alignment(glocal(c.query, c.ref, {}, c.band),
                          detail::glocal_reference(c.query, c.ref, {}, c.band),
                          "glocal " + label);
  }
  // Empty inputs behave identically too.
  EXPECT_THROW(detail::banded_global_reference("", "ACGT", {}, 4),
               std::invalid_argument);
  EXPECT_TRUE(detail::glocal_reference("", "ACGT", {}, 4).cigar.empty());
}

TEST(SmithWaterman, CigarConsistencyProperty) {
  Rng rng(83);
  const char bases[] = {'A', 'C', 'G', 'T'};
  for (int trial = 0; trial < 50; ++trial) {
    std::string ref(100, 'A');
    for (auto& c : ref) c = bases[rng.below(4)];
    // Query = mutated slice of ref.
    const std::size_t start = rng.below(40);
    std::string query = ref.substr(start, 50);
    for (int m = 0; m < 3; ++m) {
      query[rng.below(query.size())] = bases[rng.below(4)];
    }
    const auto r = glocal(query, ref, {}, 10);
    if (r.cigar.empty()) continue;
    EXPECT_EQ(cigar_read_length(r.cigar),
              static_cast<std::uint32_t>(r.query_end - r.query_start));
    EXPECT_EQ(cigar_reference_length(r.cigar),
              static_cast<std::uint32_t>(r.ref_end - r.ref_start));
  }
}

// --- read aligner -------------------------------------------------------------

struct AlignerFixture : public ::testing::Test {
  void SetUp() override {
    reference = simdata::generate_reference(
        simdata::ReferenceSpec::genome(200'000, 2, 91));
    index = std::make_unique<FmIndex>(reference);
    aligner = std::make_unique<ReadAligner>(*index);
  }

  Reference reference;
  std::unique_ptr<FmIndex> index;
  std::unique_ptr<ReadAligner> aligner;
};

TEST_F(AlignerFixture, AlignsExactRead) {
  const std::string seq(reference.slice(0, 5000, 100));
  FastqRecord read{"r", seq, std::string(100, 'I')};
  const SamRecord rec = aligner->align_single(read);
  EXPECT_FALSE(rec.is_unmapped());
  EXPECT_EQ(rec.contig_id, 0);
  EXPECT_EQ(rec.pos, 5000);
  EXPECT_FALSE(rec.is_reverse());
  EXPECT_GT(rec.mapq, 0);
}

TEST_F(AlignerFixture, AlignsReverseComplementRead) {
  const std::string fwd(reference.slice(1, 3000, 100));
  FastqRecord read{"r", simdata::reverse_complement(fwd),
                   std::string(100, 'I')};
  const SamRecord rec = aligner->align_single(read);
  EXPECT_FALSE(rec.is_unmapped());
  EXPECT_EQ(rec.contig_id, 1);
  EXPECT_EQ(rec.pos, 3000);
  EXPECT_TRUE(rec.is_reverse());
  // Sequence is stored reference-oriented.
  EXPECT_EQ(rec.sequence, fwd);
}

TEST_F(AlignerFixture, ToleratesMismatches) {
  std::string seq(reference.slice(0, 20000, 100));
  seq[10] = seq[10] == 'A' ? 'C' : 'A';
  seq[60] = seq[60] == 'G' ? 'T' : 'G';
  const SamRecord rec =
      aligner->align_single({"r", seq, std::string(100, 'I')});
  EXPECT_FALSE(rec.is_unmapped());
  EXPECT_EQ(rec.pos, 20000);
}

TEST_F(AlignerFixture, RandomReadUnmapped) {
  Rng rng(97);
  std::string junk(100, 'A');
  const char bases[] = {'A', 'C', 'G', 'T'};
  for (auto& c : junk) c = bases[rng.below(4)];
  // A uniformly random read is overwhelmingly unlikely to align with a
  // decent score against a 200kb genome.
  const SamRecord rec =
      aligner->align_single({"r", junk, std::string(100, 'I')});
  // Either unmapped, or mapped with low score evidence (soft clips).
  if (!rec.is_unmapped()) {
    std::uint32_t clipped = 0;
    for (const auto& el : rec.cigar) {
      if (el.op == CigarOp::kSoftClip) clipped += el.length;
    }
    EXPECT_GT(clipped, 30u);
  }
}

TEST_F(AlignerFixture, PairedEndProperPairFlags) {
  const std::string frag(reference.slice(0, 40000, 350));
  FastqPair pair;
  pair.first = {"p/1", frag.substr(0, 100), std::string(100, 'I')};
  pair.second = {"p/2", simdata::reverse_complement(frag.substr(250, 100)),
                 std::string(100, 'I')};
  const auto [r1, r2] = aligner->align_pair(pair);
  EXPECT_TRUE(r1.flag & SamFlags::kPaired);
  EXPECT_TRUE(r1.flag & SamFlags::kProperPair);
  EXPECT_TRUE(r1.flag & SamFlags::kFirstOfPair);
  EXPECT_TRUE(r2.flag & SamFlags::kSecondOfPair);
  EXPECT_EQ(r1.pos, 40000);
  EXPECT_EQ(r2.pos, 40250);
  EXPECT_FALSE(r1.is_reverse());
  EXPECT_TRUE(r2.is_reverse());
  EXPECT_EQ(r1.tlen, 350);
  EXPECT_EQ(r2.tlen, -350);
  EXPECT_EQ(r1.mate_pos, r2.pos);
}

TEST_F(AlignerFixture, SimulatedReadsAlignAccurately) {
  const simdata::Donor donor(reference, {});
  simdata::ReadSimSpec spec;
  spec.coverage = 1.0;
  spec.seed = 3;
  const auto sample = simdata::simulate_reads(reference, donor, spec);
  ASSERT_GT(sample.pairs.size(), 100u);

  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(200, sample.pairs.size());
       ++i) {
    const auto& pair = sample.pairs[i];
    const auto [r1, r2] = aligner->align_pair(pair);
    // Truth from the read name: sim:<contig>:<pos>:<serial>.
    const auto& name = pair.first.name;
    const auto p1 = name.find(':');
    const auto p2 = name.find(':', p1 + 1);
    const auto p3 = name.find(':', p2 + 1);
    const std::string contig = name.substr(p1 + 1, p2 - p1 - 1);
    const std::int64_t pos = std::stoll(name.substr(p2 + 1, p3 - p2 - 1));
    const auto cid = reference.find_contig(contig).value();
    ++total;
    if (!r1.is_unmapped() && r1.contig_id == cid &&
        std::abs(r1.pos - pos) <= 12) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.93);
}

// --- hash aligner (SNAP-like) --------------------------------------------------

TEST(HashAligner, AlignsExactReads) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::genome(150'000, 2, 101));
  const HashAligner aligner(ref);
  Rng rng(103);
  int correct = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const auto cid = static_cast<std::int32_t>(rng.below(2));
    const auto& seq = ref.contig(cid).sequence;
    const std::size_t pos = rng.below(seq.size() - 120);
    const std::string read = seq.substr(pos, 100);
    if (read.find('N') != std::string::npos) {
      ++correct;  // skip gap reads
      continue;
    }
    const SamRecord rec =
        aligner.align({"r", read, std::string(100, 'I')});
    if (!rec.is_unmapped() && rec.contig_id == cid &&
        std::abs(rec.pos - static_cast<std::int64_t>(pos)) <= 8) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 92);
}

TEST(HashAligner, ReverseStrand) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(50'000, 107));
  const HashAligner aligner(ref);
  const std::string fwd(ref.slice(0, 1000, 100));
  const SamRecord rec = aligner.align(
      {"r", simdata::reverse_complement(fwd), std::string(100, 'I')});
  EXPECT_FALSE(rec.is_unmapped());
  EXPECT_TRUE(rec.is_reverse());
  EXPECT_EQ(rec.pos, 1000);
}

TEST(HashAligner, ReportsIndexFootprint) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(20'000, 109));
  const HashAligner aligner(ref);
  EXPECT_GT(aligner.index_bytes(), 20'000u);
}


TEST_F(AlignerFixture, MateRescueRecoversJunkMate) {
  // First mate aligns cleanly; second mate is corrupted enough that
  // seeding fails, but SW rescue in the insert window recovers it.
  const std::string frag(reference.slice(0, 60'000, 350));
  FastqPair pair;
  pair.first = {"p/1", frag.substr(0, 100), std::string(100, 'I')};
  std::string mate = simdata::reverse_complement(frag.substr(250, 100));
  // Corrupt every 8th base: seeds of length 19 cannot survive, SW can.
  Rng rng(601);
  for (std::size_t i = 0; i < mate.size(); i += 8) {
    mate[i] = mate[i] == 'A' ? 'C' : 'A';
  }
  pair.second = {"p/2", mate, std::string(100, 'I')};
  const auto [r1, r2] = aligner->align_pair(pair);
  EXPECT_FALSE(r1.is_unmapped());
  EXPECT_FALSE(r2.is_unmapped()) << "mate rescue failed";
  EXPECT_NEAR(static_cast<double>(r2.pos), 60'250.0, 16.0);
  EXPECT_TRUE(r2.flag & SamFlags::kProperPair);
}

TEST_F(AlignerFixture, BothMatesJunkStayUnmapped) {
  Rng rng(607);
  auto junk = [&rng] {
    std::string s(100, 'A');
    for (auto& c : s) c = "ACGT"[rng.below(4)];
    return s;
  };
  FastqPair pair;
  pair.first = {"j/1", junk(), std::string(100, 'I')};
  pair.second = {"j/2", junk(), std::string(100, 'I')};
  const auto [r1, r2] = aligner->align_pair(pair);
  // Mate flags must be consistent even when unmapped.
  if (r1.is_unmapped()) {
    EXPECT_TRUE(r2.flag & SamFlags::kMateUnmapped);
  }
  EXPECT_TRUE(r1.flag & SamFlags::kPaired);
  EXPECT_TRUE(r2.flag & SamFlags::kPaired);
}

TEST_F(AlignerFixture, ShortReadBelowSeedLengthUnmapped) {
  const SamRecord rec = aligner->align_single(
      {"tiny", "ACGTACGTAC", std::string(10, 'I')});
  EXPECT_TRUE(rec.is_unmapped());
}

}  // namespace
}  // namespace gpf::align
