// Differential fuzzing for the block-parallel text parsers: for thousands
// of generated inputs — valid writer output plus mutated blobs — the fast
// path (dispatched SIMD level, optionally with a tiny parallel threshold)
// must agree with the byte-at-a-time reference parser byte for byte:
// identical records on success, identical std::invalid_argument messages
// on failure.
//
// The suite runs under GPF_FUZZ_SEED (see .github/workflows/ci.yml, which
// sweeps seeds under ASan with GPF_FORCE_SCALAR both off and on); any
// failure message includes the seed and the offending blob.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "engine/fault_injector.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/scan.hpp"
#include "formats/vcf.hpp"

namespace gpf {
namespace {

constexpr int kCasesPerFormat = 1200;

std::uint64_t fuzz_seed() {
  // Strict parse: a malformed GPF_FUZZ_SEED aborts the suite instead of
  // silently collapsing the CI sweep onto one default seed.
  return engine::seed_from_env("GPF_FUZZ_SEED", 42);
}

/// Outcome of a parse attempt: the value, or the error message.
template <typename T>
struct Outcome {
  std::optional<T> value;
  std::string error;

  bool operator==(const Outcome&) const = default;
};

template <typename Fn>
auto run_catch(Fn&& fn) -> Outcome<decltype(fn())> {
  try {
    return {fn(), {}};
  } catch (const std::invalid_argument& e) {
    return {std::nullopt, e.what()};
  }
}

/// `prefix + std::to_string(n)` via append; the operator+ spelling trips
/// a GCC 12 -Wrestrict false positive when fully inlined at -O3.
std::string numbered(const char* prefix, std::uint64_t n) {
  std::string s(prefix);
  s += std::to_string(n);
  return s;
}

/// Printable (mostly) random name for headers/qnames.
std::string random_name(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = 1 + rng.below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('!' + rng.below(94)));  // [0x21, 0x7E]
  }
  return s;
}

std::string random_bases(Rng& rng, std::size_t max_len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T', 'N'};
  std::string s;
  const std::size_t len = rng.below(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) s.push_back(kBases[rng.below(5)]);
  return s;
}

/// Applies `count` random byte-level mutations: substitute, insert,
/// delete, truncate, duplicate a slice, or flip a newline.
void mutate(Rng& rng, std::string& text, int count) {
  for (int m = 0; m < count && !text.empty(); ++m) {
    const std::size_t at = rng.below(text.size());
    switch (rng.below(7)) {
      case 0:  // substitute with an arbitrary byte (NUL..0xFF)
        text[at] = static_cast<char>(rng.below(256));
        break;
      case 1:  // insert an arbitrary byte
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(at),
                    static_cast<char>(rng.below(256)));
        break;
      case 2:  // delete one byte
        text.erase(at, 1);
        break;
      case 3:  // truncate
        text.resize(at);
        break;
      case 4: {  // duplicate a short slice
        const std::size_t len = std::min(text.size() - at, rng.below(16) + 1);
        text.insert(at, text.substr(at, len));
        break;
      }
      case 5:  // inject a newline (reframes every later line)
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(at), '\n');
        break;
      default:  // smash a newline into a space
        if (const std::size_t nl = text.find('\n', at);
            nl != std::string::npos) {
          text[nl] = ' ';
        }
        break;
    }
  }
}

/// Randomly rewrites "\n" as "\r\n" (the parsers accept CRLF transparently
/// on *valid* inputs).
std::string with_crlf(Rng& rng, const std::string& text) {
  std::string out;
  out.reserve(text.size() + text.size() / 4);
  for (const char c : text) {
    if (c == '\n' && rng.below(2) == 0) out.push_back('\r');
    out.push_back(c);
  }
  return out;
}

// --- FASTQ -------------------------------------------------------------

std::string random_fastq_text(Rng& rng) {
  std::vector<FastqRecord> records;
  const std::size_t n = rng.below(12);
  for (std::size_t i = 0; i < n; ++i) {
    FastqRecord r;
    r.name = random_name(rng, 12);
    r.sequence = random_bases(rng, 40);
    r.quality.resize(r.sequence.size());
    for (auto& q : r.quality) {
      q = static_cast<char>(kPhredBase + rng.below(kPhredMax - kPhredBase + 1));
    }
    records.push_back(std::move(r));
  }
  return write_fastq(records);
}

void check_fastq_agreement(std::uint64_t seed, const std::string& text,
                           std::size_t threshold) {
  const simd::Level level = simd::active_level();
  const auto ref =
      run_catch([&] { return detail::parse_fastq_reference(text); });
  const auto fast =
      run_catch([&] { return detail::parse_fastq_at(level, text, threshold); });
  ASSERT_EQ(ref, fast) << "seed=" << seed << " threshold=" << threshold
                       << " blob:\n"
                       << text;
  // The validation-only scan must agree with the full parse exactly.
  const auto scan =
      run_catch([&] { return detail::scan_fastq_at(level, text, threshold); });
  ASSERT_EQ(scan.error, ref.error) << "seed=" << seed << " blob:\n" << text;
  if (ref.value.has_value()) {
    FastqScanStats expected;
    expected.records = ref.value->size();
    for (const auto& r : *ref.value) expected.bases += r.sequence.size();
    ASSERT_EQ(scan.value.value(), expected) << "seed=" << seed;
  }
}

TEST(FormatsFuzz, FastqDifferential) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed * 0x9E37'79B9ULL + 1);
  for (int c = 0; c < kCasesPerFormat; ++c) {
    std::string text = random_fastq_text(rng);
    if (rng.below(4) == 0) text = with_crlf(rng, text);
    if (rng.below(8) != 0) {
      mutate(rng, text, 1 + static_cast<int>(rng.below(3)));
    }
    // Every 8th case forces the parallel driver (threshold 1) so chunked
    // line indexing and cross-chunk record stitching run on small blobs.
    const std::size_t threshold = c % 8 == 0 ? 1 : fmt::kParallelParseBytes;
    check_fastq_agreement(seed, text, threshold);
  }
}

TEST(FormatsFuzz, FastqValidInputsAlwaysParse) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed * 0x9E37'79B9ULL + 2);
  for (int c = 0; c < 200; ++c) {
    const std::string text = random_fastq_text(rng);
    const auto parsed = parse_fastq(text);  // must not throw
    EXPECT_EQ(write_fastq(parsed), text) << "seed=" << seed;
  }
}

// --- SAM ---------------------------------------------------------------

std::string random_sam_text(Rng& rng) {
  SamHeader header;
  const std::size_t n_contigs = 1 + rng.below(3);
  for (std::size_t c = 0; c < n_contigs; ++c) {
    header.contigs.push_back(
        {numbered("c", c), static_cast<std::int64_t>(1000 + rng.below(9000))});
  }
  header.coordinate_sorted = rng.below(2) == 0;
  std::vector<SamRecord> records;
  const std::size_t n = rng.below(10);
  for (std::size_t i = 0; i < n; ++i) {
    SamRecord r;
    r.qname = random_name(rng, 10);
    r.flag = static_cast<std::uint16_t>(rng.below(0x1000));
    r.contig_id = static_cast<std::int32_t>(rng.below(n_contigs + 1)) - 1;
    r.pos = static_cast<std::int64_t>(rng.below(10'000)) - 1;
    r.mapq = static_cast<std::uint8_t>(rng.below(255));
    const std::string seq = random_bases(rng, 30);
    if (!seq.empty()) {
      r.cigar = {{CigarOp::kSoftClip, 2},
                 {CigarOp::kMatch, static_cast<std::uint32_t>(seq.size())}};
    }
    r.mate_contig_id = static_cast<std::int32_t>(rng.below(n_contigs + 1)) - 1;
    r.mate_pos = static_cast<std::int64_t>(rng.below(10'000)) - 1;
    r.tlen = static_cast<std::int64_t>(rng.below(600)) - 300;
    r.sequence = seq;
    r.quality = std::string(seq.size(), static_cast<char>('!' + rng.below(90)));
    records.push_back(std::move(r));
  }
  return write_sam(header, records);
}

TEST(FormatsFuzz, SamDifferential) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed * 0x9E37'79B9ULL + 3);
  const simd::Level level = simd::active_level();
  for (int c = 0; c < kCasesPerFormat; ++c) {
    std::string text = random_sam_text(rng);
    if (rng.below(4) == 0) text = with_crlf(rng, text);
    if (rng.below(8) != 0) {
      mutate(rng, text, 1 + static_cast<int>(rng.below(3)));
    }
    const std::size_t threshold = c % 8 == 0 ? 1 : fmt::kParallelParseBytes;
    const auto ref =
        run_catch([&] { return detail::parse_sam_reference(text); });
    const auto fast =
        run_catch([&] { return detail::parse_sam_at(level, text, threshold); });
    ASSERT_EQ(ref, fast) << "seed=" << seed << " threshold=" << threshold
                         << " blob:\n"
                         << text;
  }
}

// --- VCF ---------------------------------------------------------------

std::string random_vcf_text(Rng& rng) {
  VcfHeader header;
  const std::size_t n_contigs = 1 + rng.below(3);
  for (std::size_t c = 0; c < n_contigs; ++c) {
    header.contigs.push_back(
        {numbered("c", c), static_cast<std::int64_t>(1000 + rng.below(9000))});
  }
  header.sample_name = random_name(rng, 8);
  std::vector<VcfRecord> records;
  const std::size_t n = rng.below(10);
  for (std::size_t i = 0; i < n; ++i) {
    VcfRecord v;
    v.contig_id = static_cast<std::int32_t>(rng.below(n_contigs));
    v.pos = static_cast<std::int64_t>(rng.below(10'000));
    v.id = rng.below(2) == 0 ? "." : numbered("rs", rng.below(100000));
    v.ref = random_bases(rng, 4);
    if (v.ref.empty()) v.ref = "A";
    v.alt = random_bases(rng, 4);
    if (v.alt.empty()) v.alt = "C";
    v.qual = static_cast<double>(rng.below(10'000)) / 100.0;  // %.2f-exact
    v.genotype = static_cast<Genotype>(rng.below(3));
    records.push_back(std::move(v));
  }
  return write_vcf(header, records);
}

TEST(FormatsFuzz, VcfDifferential) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed * 0x9E37'79B9ULL + 4);
  const simd::Level level = simd::active_level();
  for (int c = 0; c < kCasesPerFormat; ++c) {
    std::string text = random_vcf_text(rng);
    if (rng.below(4) == 0) text = with_crlf(rng, text);
    if (rng.below(8) != 0) {
      mutate(rng, text, 1 + static_cast<int>(rng.below(3)));
    }
    const std::size_t threshold = c % 8 == 0 ? 1 : fmt::kParallelParseBytes;
    const auto ref =
        run_catch([&] { return detail::parse_vcf_reference(text); });
    const auto fast =
        run_catch([&] { return detail::parse_vcf_at(level, text, threshold); });
    ASSERT_EQ(ref, fast) << "seed=" << seed << " threshold=" << threshold
                         << " blob:\n"
                         << text;
  }
}

// --- scan-layer kernels ------------------------------------------------

TEST(FormatsFuzz, ScanKernelsAgreeWithByteLoops) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed * 0x9E37'79B9ULL + 5);
  const simd::Level level = simd::active_level();
  for (int c = 0; c < 500; ++c) {
    std::string buf(64 + rng.below(192), '\0');
    for (auto& ch : buf) ch = static_cast<char>(rng.below(256));
    const char needle = static_cast<char>(rng.below(256));
    const auto lo = static_cast<std::uint8_t>(1 + rng.below(120));
    const auto hi = static_cast<std::uint8_t>(lo + rng.below(127u - lo + 1));

    // Block kernels: every dispatch level yields the byte-loop mask.
    std::uint64_t expected_eq = 0;
    std::uint64_t expected_bad = 0;
    for (int i = 0; i < 64; ++i) {
      const auto b =
          static_cast<std::uint8_t>(buf[static_cast<std::size_t>(i)]);
      if (static_cast<char>(b) == needle) expected_eq |= std::uint64_t{1} << i;
      if (b < lo || b > hi) expected_bad |= std::uint64_t{1} << i;
    }
    for (const simd::Level l : {simd::Level::kScalar, level}) {
      ASSERT_EQ(fmt::eq_block_mask(l, buf.data(), needle), expected_eq)
          << "seed=" << seed << " level=" << static_cast<int>(l);
      ASSERT_EQ(fmt::range_violation_block_mask(l, buf.data(), lo, hi),
                expected_bad)
          << "seed=" << seed << " level=" << static_cast<int>(l);
    }

    ASSERT_EQ(fmt::bytes_in_range(level, buf, lo, hi),
              fmt::detail::bytes_in_range_reference(buf, lo, hi))
        << "seed=" << seed;

    std::vector<std::string_view> fast_fields;
    std::vector<std::string_view> ref_fields;
    fmt::split_fields(level, buf, needle, fast_fields);
    fmt::detail::split_fields_reference(buf, needle, ref_fields);
    ASSERT_EQ(fast_fields, ref_fields) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gpf
