// Adaptive-scheduling tests: the LPT heap, the cost model, the
// deterministic plan rewrite, the engine's adaptive record-range path
// (bit-identical to the static layout under heavy skew), and the
// observational quantile speculation rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "engine/dataset.hpp"
#include "sched/cost_model.hpp"
#include "sched/lpt.hpp"
#include "sched/repartition.hpp"
#include "sched/scheduler.hpp"

namespace gpf {
namespace {

// --- LPT --------------------------------------------------------------------

TEST(Lpt, MakespanSingleSlotIsSum) {
  const std::vector<double> costs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(sched::lpt_makespan(costs, 1), 6.0);
}

TEST(Lpt, BalancesAcrossSlots) {
  // LPT on {4,3,3,2} over 2 slots: 4+2 vs 3+3 -> makespan 6.
  const std::vector<double> costs = {3.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(sched::lpt_makespan(costs, 2), 6.0);
}

TEST(Lpt, EmptyAndZeroSlots) {
  EXPECT_DOUBLE_EQ(sched::lpt_makespan({}, 4), 0.0);
  const std::vector<double> costs = {1.0};
  EXPECT_DOUBLE_EQ(sched::lpt_makespan(costs, 0), 0.0);
}

TEST(Lpt, PlacementsCoverEveryTaskDeterministically) {
  const std::vector<double> costs = {5.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  std::vector<int> seen(costs.size(), 0);
  std::vector<std::size_t> slots_used;
  const double end = sched::lpt_schedule(
      costs, 2, 10.0, [&](std::size_t idx, double t0, double dur,
                          std::size_t slot) {
        ++seen[idx];
        EXPECT_GE(t0, 10.0);
        EXPECT_DOUBLE_EQ(dur, costs[idx]);
        slots_used.push_back(slot);
      });
  for (const int s : seen) EXPECT_EQ(s, 1);
  // 5 on one slot; five 1s pack onto the other: end = 10 + 5.
  EXPECT_DOUBLE_EQ(end, 15.0);
  EXPECT_LE(*std::max_element(slots_used.begin(), slots_used.end()), 1u);
}

// --- CostModel --------------------------------------------------------------

TEST(CostModel, DefaultsWhenUnobserved) {
  sched::CostModel model;
  EXPECT_DOUBLE_EQ(model.per_record_seconds("never_seen"),
                   model.params().default_per_record_seconds);
  EXPECT_EQ(model.observed_stage_count(), 0u);
}

TEST(CostModel, FirstObservationTakenVerbatimThenDecayed) {
  sched::CostModel model;
  const std::vector<double> secs = {2.0};
  const std::vector<std::size_t> recs = {1000};
  model.observe_stage("s", secs, recs);
  EXPECT_DOUBLE_EQ(model.per_record_seconds("s"), 2e-3);

  // Second execution at 4 ms/record: decayed toward it by `decay`.
  const std::vector<double> secs2 = {4.0};
  model.observe_stage("s", secs2, recs);
  const double d = model.params().decay;
  EXPECT_NEAR(model.per_record_seconds("s"), (1 - d) * 2e-3 + d * 4e-3,
              1e-12);
  EXPECT_EQ(model.observed_stage_count(), 1u);
}

TEST(CostModel, PredictsMakespanWithOverhead) {
  sched::CostModel model;
  const std::vector<double> secs = {1.0};
  const std::vector<std::size_t> recs = {1000};
  model.observe_stage("s", secs, recs);
  const std::vector<std::size_t> layout = {1000, 1000};
  const double expect =
      1.0 + model.params().task_overhead_seconds;  // one per slot
  EXPECT_NEAR(model.predict_makespan("s", layout, 2), expect, 1e-9);
}

// --- plan_stage -------------------------------------------------------------

sched::StagePlan plan_of(const std::vector<double>& costs,
                         const std::vector<std::size_t>& records,
                         std::size_t slots, bool splittable = true) {
  sched::RepartitionPolicy policy;
  return sched::plan_stage(policy, costs, records, slots, splittable,
                           /*task_overhead_seconds=*/20e-6);
}

/// Every record of every partition is covered exactly once, in order.
void expect_tiles(const sched::StagePlan& plan,
                  const std::vector<std::size_t>& records) {
  std::vector<std::size_t> next(records.size(), 0);
  for (const auto& task : plan.tasks) {
    for (const auto& sp : task.spans) {
      ASSERT_LT(sp.partition, records.size());
      EXPECT_EQ(sp.begin, next[sp.partition])
          << "span out of order in partition " << sp.partition;
      EXPECT_LE(sp.end, records[sp.partition]);
      next[sp.partition] = sp.end;
    }
  }
  for (std::size_t p = 0; p < records.size(); ++p) {
    EXPECT_EQ(next[p], records[p]) << "partition " << p << " not covered";
  }
}

TEST(PlanStage, UniformLayoutNotAdopted) {
  const std::vector<double> costs(8, 1.0);
  const std::vector<std::size_t> records(8, 1000);
  const auto plan = plan_of(costs, records, 4);
  EXPECT_FALSE(plan.adopted);
}

TEST(PlanStage, HeavyPartitionIsSplit) {
  // One partition predicted 100x the others.
  std::vector<double> costs(16, 0.01);
  std::vector<std::size_t> records(16, 100);
  costs[3] = 1.0;
  records[3] = 10'000;
  const auto plan = plan_of(costs, records, 8);
  ASSERT_TRUE(plan.adopted);
  EXPECT_GE(plan.partitions_split, 1u);
  EXPECT_LT(plan.adaptive_makespan, plan.static_makespan);
  expect_tiles(plan, records);
  // The heavy partition became multiple spans.
  std::size_t heavy_spans = 0;
  for (const auto& task : plan.tasks) {
    for (const auto& sp : task.spans) {
      if (sp.partition == 3) ++heavy_spans;
    }
  }
  EXPECT_GT(heavy_spans, 1u);
}

TEST(PlanStage, MicroPartitionsAreMerged) {
  // 64 partitions of one record each: per-task overhead dominates, so the
  // planner bundles them (but never below min_tasks_per_slot * slots).
  const std::vector<double> costs(64, 5e-6);
  const std::vector<std::size_t> records(64, 1);
  sched::RepartitionPolicy policy;
  const auto plan =
      sched::plan_stage(policy, costs, records, 4, true, 20e-6);
  ASSERT_TRUE(plan.adopted);
  EXPECT_GE(plan.tasks_merged, 1u);
  EXPECT_LT(plan.tasks.size(), records.size());
  EXPECT_GE(plan.tasks.size(), policy.min_tasks_per_slot * 4);
  expect_tiles(plan, records);
}

TEST(PlanStage, NotSplittableOnlyMerges) {
  std::vector<double> costs(16, 1e-5);
  std::vector<std::size_t> records(16, 1);
  costs[0] = 1.0;
  records[0] = 10'000;
  const auto plan = plan_of(costs, records, 4, /*splittable=*/false);
  for (const auto& task : plan.tasks) {
    for (const auto& sp : task.spans) {
      EXPECT_EQ(sp.begin, 0u);
      EXPECT_EQ(sp.end, records[sp.partition]);
    }
  }
  if (plan.adopted) expect_tiles(plan, records);
}

TEST(PlanStage, DeterministicAcrossCalls) {
  std::vector<double> costs(16, 0.01);
  std::vector<std::size_t> records(16, 100);
  costs[7] = 0.9;
  records[7] = 9'000;
  const auto a = plan_of(costs, records, 8);
  const auto b = plan_of(costs, records, 8);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    ASSERT_EQ(a.tasks[t].spans.size(), b.tasks[t].spans.size());
    for (std::size_t s = 0; s < a.tasks[t].spans.size(); ++s) {
      EXPECT_EQ(a.tasks[t].spans[s].partition, b.tasks[t].spans[s].partition);
      EXPECT_EQ(a.tasks[t].spans[s].begin, b.tasks[t].spans[s].begin);
      EXPECT_EQ(a.tasks[t].spans[s].end, b.tasks[t].spans[s].end);
    }
  }
}

TEST(PlanStage, EmptyPartitionsAreTiled) {
  std::vector<double> costs = {1.0, 0.0, 0.01, 0.0};
  std::vector<std::size_t> records = {10'000, 0, 100, 0};
  const auto plan = plan_of(costs, records, 4);
  if (plan.adopted) expect_tiles(plan, records);
}

// --- engine integration -----------------------------------------------------

/// Partition layout with one partition ~100x heavier than the rest.
std::vector<std::vector<int>> skewed_partitions() {
  std::vector<std::vector<int>> parts(16);
  int v = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const std::size_t n = p == 5 ? 20'000 : 200;
    for (std::size_t k = 0; k < n; ++k) parts[p].push_back(v++);
  }
  return parts;
}

/// Zipf-ish layout: partition p holds ~N/(p+1) records.
std::vector<std::vector<int>> zipf_partitions() {
  std::vector<std::vector<int>> parts(12);
  int v = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const std::size_t n = 12'000 / (p + 1);
    for (std::size_t k = 0; k < n; ++k) parts[p].push_back(v++);
  }
  return parts;
}

TEST(AdaptiveEngine, MapBitIdenticalUnderSkew) {
  engine::Engine plain({.worker_threads = 4});
  engine::Engine adaptive({.worker_threads = 4});
  adaptive.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());

  auto parts = skewed_partitions();
  auto want = plain.make_dataset(parts)
                  .map("square", [](const int& x) { return x * x; })
                  .partitions();
  auto got = adaptive.make_dataset(parts)
                 .map("square", [](const int& x) { return x * x; })
                 .partitions();
  EXPECT_EQ(got, want);

  // The heavy partition was actually split (merged micro-partitions may
  // cancel the split's effect on task_count, so assert the counters).
  const auto& stage = adaptive.metrics().stages().back();
  EXPECT_GE(stage.adaptive_splits, 1u);
  EXPECT_GE(adaptive.scheduler()->stats().partitions_split, 1u);
  EXPECT_GE(adaptive.scheduler()->stats().stages_rewritten, 1u);
}

TEST(AdaptiveEngine, FlatMapAndFilterBitIdenticalUnderSkew) {
  engine::Engine plain({.worker_threads = 4});
  engine::Engine adaptive({.worker_threads = 4});
  adaptive.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());

  auto parts = skewed_partitions();
  auto run = [&](engine::Engine& e) {
    return e.make_dataset(parts)
        .flat_map("dup",
                  [](const int& x) { return std::vector<int>{x, -x}; })
        .filter("odd", [](const int& x) { return (x & 1) != 0; })
        .partitions();
  };
  EXPECT_EQ(run(adaptive), run(plain));
}

TEST(AdaptiveEngine, ZipfSkewBitIdenticalAndMergesTail) {
  engine::Engine plain({.worker_threads = 4});
  engine::Engine adaptive({.worker_threads = 4});
  adaptive.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());

  auto parts = zipf_partitions();
  auto run = [&](engine::Engine& e) {
    return e.make_dataset(parts)
        .map("inc", [](const int& x) { return x + 1; })
        .partitions();
  };
  EXPECT_EQ(run(adaptive), run(plain));
}

TEST(AdaptiveEngine, WarmModelStillBitIdentical) {
  // Run the same stage name repeatedly so the cost model is warm (decayed
  // real timings, not cold record-count ratios) and keeps rewriting.
  engine::Engine plain({.worker_threads = 4});
  engine::Engine adaptive({.worker_threads = 4});
  adaptive.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());
  auto parts = skewed_partitions();
  for (int round = 0; round < 3; ++round) {
    auto run = [&](engine::Engine& e) {
      return e.make_dataset(parts)
          .map("warm", [](const int& x) { return x * 3; })
          .partitions();
    };
    EXPECT_EQ(run(adaptive), run(plain));
  }
  EXPECT_GT(adaptive.scheduler()->model().observed_stage_count(), 0u);
}

TEST(AdaptiveEngine, UniformLayoutFallsBackToStaticTaskCount) {
  engine::Engine adaptive({.worker_threads = 4});
  adaptive.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());
  auto ds = adaptive.parallelize(std::vector<int>(8000, 1), 8)
                .map("flat", [](const int& x) { return x + 1; });
  EXPECT_EQ(ds.partitions().size(), 8u);
  const auto& stage = adaptive.metrics().stages().back();
  EXPECT_EQ(stage.task_count, 8u);
  EXPECT_EQ(stage.adaptive_splits, 0u);
}

TEST(AdaptiveEngine, PercentilesRecordedOnStages) {
  engine::Engine e({.worker_threads = 4});
  auto ds = e.parallelize(std::vector<int>(4000, 2), 8)
                .map("p", [](const int& x) { return x; });
  (void)ds;
  const auto& stage = e.metrics().stages().back();
  EXPECT_GE(stage.task_p95_ms, stage.task_p50_ms);
  EXPECT_GE(stage.task_p99_ms, stage.task_p95_ms);
}

// --- quantile speculation ---------------------------------------------------

TEST(QuantileSpeculation, LaunchesCopyForObservedStraggler) {
  engine::Engine e({.worker_threads = 4});
  // Attaching a scheduler arms the observational quantile rule (no
  // injector here, so the static rule cannot fire).
  e.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());

  // 8 one-record partitions; record 0 sleeps ~400 ms, the rest ~2 ms.
  // The running median finishes near 2 ms, so the straggler crosses
  // quantile_factor x median long before it completes, and its
  // speculative copy (also slow) loses or ties -- either way results are
  // the claim winner's, which is byte-identical.
  std::vector<std::vector<int>> parts(8);
  for (int p = 0; p < 8; ++p) parts[static_cast<std::size_t>(p)] = {p};
  auto out = e.make_dataset(parts)
                 .map_partitions<int>(
                     "straggle",
                     [](const std::vector<int>& part) {
                       const bool slow = part[0] == 0;
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(slow ? 400 : 2));
                       return std::vector<int>{part[0] + 100};
                     })
                 .collect();
  std::sort(out.begin(), out.end());
  const std::vector<int> want = {100, 101, 102, 103, 104, 105, 106, 107};
  EXPECT_EQ(out, want);
  const auto& stage = e.metrics().stages().back();
  EXPECT_GE(stage.speculative_launches, 1u);
}

TEST(QuantileSpeculation, OffByDefaultWithoutScheduler) {
  engine::Engine e({.worker_threads = 4});
  const engine::StageExecPolicy policy = e.exec_policy();
  EXPECT_FALSE(policy.speculation.quantile);
  e.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());
  EXPECT_TRUE(e.exec_policy().speculation.quantile);
}

// --- work stealing ----------------------------------------------------------

TEST(WorkStealing, SkewedSubmissionDrainsAcrossWorkers) {
  // All heavy tasks land on one deque via round-robin bursts; idle
  // workers must steal them for the batch to finish promptly.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([&ran] {
      ran.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(WorkStealing, WorkerLocalSubmissionsVisibleToThieves) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  // A worker task fans out subtasks onto its own deque; other workers
  // must be able to steal them.
  pool.submit([&] {
      std::vector<std::future<void>> inner;
      for (int i = 0; i < 32; ++i) {
        inner.push_back(pool.submit([&ran] {
          ran.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }));
      }
      for (auto& f : inner) f.get();
    }).get();
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace gpf
