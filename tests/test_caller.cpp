// Tests for the HaplotypeCaller stack: active regions, assembly, pair-HMM,
// genotyping, and end-to-end variant calling against planted truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "caller/active_region.hpp"
#include "caller/assembler.hpp"
#include "caller/genotyper.hpp"
#include "caller/gvcf.hpp"
#include "caller/haplotype_caller.hpp"
#include "caller/pairhmm.hpp"
#include "cleaner/sorter.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"
#include "simdata/variant_gen.hpp"

namespace gpf::caller {
namespace {

SamRecord read_at(const Reference& ref, std::int64_t pos, int len,
                  std::string seq = {}) {
  SamRecord r;
  r.qname = "r" + std::to_string(pos);
  r.contig_id = 0;
  r.pos = pos;
  r.sequence = seq.empty() ? std::string(ref.slice(0, pos, len)) : seq;
  r.quality = std::string(r.sequence.size(), 'I');
  r.cigar = {{CigarOp::kMatch, static_cast<std::uint32_t>(r.sequence.size())}};
  return r;
}

// --- active regions ------------------------------------------------------------

TEST(ActiveRegion, CleanReadsProduceNoRegions) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(10'000, 151));
  std::vector<SamRecord> records;
  for (int i = 0; i < 50; ++i) records.push_back(read_at(ref, i * 100, 80));
  const auto regions = find_active_regions(records, ref);
  EXPECT_TRUE(regions.empty());
}

TEST(ActiveRegion, SnpPileupCreatesRegion) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(10'000, 157));
  std::vector<SamRecord> records;
  for (int i = 0; i < 6; ++i) {
    auto rec = read_at(ref, 5000 - i * 10, 80);
    // Mutate the base covering reference position 5030.
    const std::size_t offset = static_cast<std::size_t>(5030 - rec.pos);
    rec.sequence[offset] = rec.sequence[offset] == 'A' ? 'C' : 'A';
    records.push_back(std::move(rec));
  }
  cleaner::coordinate_sort(records);
  const auto regions = find_active_regions(records, ref);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_LE(regions[0].start, 5030);
  EXPECT_GT(regions[0].end, 5030);
  EXPECT_EQ(regions[0].read_indices.size(), 6u);
}

TEST(ActiveRegion, DuplicatesContributeNothing) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(10'000, 163));
  std::vector<SamRecord> records;
  for (int i = 0; i < 6; ++i) {
    auto rec = read_at(ref, 5000, 80);
    rec.sequence[30] = rec.sequence[30] == 'A' ? 'C' : 'A';
    rec.flag |= SamFlags::kDuplicate;
    records.push_back(std::move(rec));
  }
  EXPECT_TRUE(find_active_regions(records, ref).empty());
}

TEST(ActiveRegion, LowQualityMismatchesIgnored) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(10'000, 167));
  std::vector<SamRecord> records;
  for (int i = 0; i < 6; ++i) {
    auto rec = read_at(ref, 5000, 80);
    rec.sequence[30] = rec.sequence[30] == 'A' ? 'C' : 'A';
    rec.quality[30] = '#';  // Phred 2
    records.push_back(std::move(rec));
  }
  EXPECT_TRUE(find_active_regions(records, ref).empty());
}

// --- assembler ------------------------------------------------------------------

TEST(Assembler, ReferenceOnlyWithoutReads) {
  const std::string window(200, 'A');
  const auto result = assemble_haplotypes({}, window);
  ASSERT_EQ(result.haplotypes.size(), 1u);
  EXPECT_EQ(result.haplotypes[0], window);
  EXPECT_FALSE(result.assembled);
}

TEST(Assembler, RecoversSnpHaplotype) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(1'000, 173));
  const std::string window(ref.slice(0, 400, 150));
  std::string alt = window;
  alt[75] = alt[75] == 'A' ? 'G' : 'A';
  // Reads tiled across the alt haplotype.
  std::vector<std::string> reads;
  for (int start = 0; start + 60 <= 150; start += 10) {
    reads.push_back(alt.substr(start, 60));
    reads.push_back(alt.substr(start, 60));  // 2x support per kmer
  }
  std::vector<std::string_view> views(reads.begin(), reads.end());
  const auto result = assemble_haplotypes(views, window);
  EXPECT_TRUE(result.assembled);
  EXPECT_NE(std::find(result.haplotypes.begin(), result.haplotypes.end(),
                      alt),
            result.haplotypes.end());
}

TEST(Assembler, RecoversDeletionHaplotype) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(1'000, 179));
  const std::string window(ref.slice(0, 300, 160));
  const std::string alt = window.substr(0, 80) + window.substr(86);
  std::vector<std::string> reads;
  for (std::size_t start = 0; start + 60 <= alt.size(); start += 8) {
    reads.push_back(alt.substr(start, 60));
    reads.push_back(alt.substr(start, 60));
  }
  std::vector<std::string_view> views(reads.begin(), reads.end());
  const auto result = assemble_haplotypes(views, window);
  EXPECT_TRUE(result.assembled);
  EXPECT_NE(std::find(result.haplotypes.begin(), result.haplotypes.end(),
                      alt),
            result.haplotypes.end());
}

TEST(Assembler, LowSupportKmersPruned) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(1'000, 181));
  const std::string window(ref.slice(0, 100, 150));
  std::string alt = window;
  alt[75] = alt[75] == 'C' ? 'T' : 'C';
  // Only one read supports the alt: below min_kmer_count=2.
  std::vector<std::string> reads = {alt.substr(50, 60)};
  std::vector<std::string_view> views(reads.begin(), reads.end());
  const auto result = assemble_haplotypes(views, window);
  EXPECT_EQ(std::find(result.haplotypes.begin(), result.haplotypes.end(),
                      alt),
            result.haplotypes.end());
}

TEST(Assembler, HaplotypeCountBounded) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(1'000, 191));
  const std::string window(ref.slice(0, 0, 200));
  std::vector<std::string> reads;
  Rng rng(193);
  // Noisy reads create many branches.
  for (int i = 0; i < 100; ++i) {
    std::string r = window.substr(rng.below(130), 60);
    for (int m = 0; m < 4; ++m) {
      r[rng.below(r.size())] = "ACGT"[rng.below(4)];
    }
    reads.push_back(std::move(r));
    reads.push_back(reads.back());
  }
  std::vector<std::string_view> views(reads.begin(), reads.end());
  AssemblerOptions options;
  options.max_haplotypes = 8;
  const auto result = assemble_haplotypes(views, window, options);
  EXPECT_LE(result.haplotypes.size(), 9u);  // ref + max 8
}

// --- pair-HMM -------------------------------------------------------------------

TEST(PairHmm, PerfectMatchBeatsMismatch) {
  PairHmm hmm;
  const std::string hap = "ACGTACGTACGTACGTACGT";
  const std::string read = hap.substr(4, 12);
  std::string mismatched = read;
  mismatched[6] = mismatched[6] == 'A' ? 'C' : 'A';
  const std::string qual(read.size(), 'I');
  EXPECT_GT(hmm.log10_likelihood(read, qual, hap),
            hmm.log10_likelihood(mismatched, qual, hap));
}

TEST(PairHmm, HighQualityMismatchPenalizedMore) {
  PairHmm hmm;
  const std::string hap = "ACGTACGTACGTACGTACGT";
  std::string read = hap.substr(4, 12);
  read[6] = read[6] == 'A' ? 'C' : 'A';
  std::string high_q(read.size(), 'I');   // Q40
  std::string low_q(read.size(), '$');    // Q3
  EXPECT_LT(hmm.log10_likelihood(read, high_q, hap),
            hmm.log10_likelihood(read, low_q, hap));
}

TEST(PairHmm, GapCheaperThanManyMismatches) {
  PairHmm hmm;
  const std::string hap = "AAAACCCCGGGGTTTTAAAACCCC";
  // Read matching hap with a 2-base deletion.
  const std::string read = "AAAACCCCGGTTTTAAAA";
  // Same read against a haplotype without the deletion context would need
  // many mismatches.
  const std::string qual(read.size(), 'I');
  const double with_gap = hmm.log10_likelihood(read, qual, hap);
  EXPECT_GT(with_gap, -10.0);
}

TEST(PairHmm, LikelihoodIsLogProbability) {
  PairHmm hmm;
  const std::string hap = "ACGTACGTACGT";
  const std::string read = "ACGT";
  const double ll = hmm.log10_likelihood(read, "IIII", hap);
  EXPECT_LE(ll, 0.0);
  EXPECT_GT(ll, -20.0);
}

TEST(PairHmm, MismatchedLengthsThrow) {
  PairHmm hmm;
  EXPECT_THROW(hmm.log10_likelihood("ACGT", "II", "ACGT"),
               std::invalid_argument);
}

TEST(PairHmm, LongReadNoUnderflow) {
  PairHmm hmm;
  const std::string hap(400, 'A');
  const std::string read(250, 'A');
  const std::string qual(250, 'I');
  const double ll = hmm.log10_likelihood(read, qual, hap);
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_GT(ll, -100.0);
}

// --- genotyper ------------------------------------------------------------------

TEST(Genotyper, CallsHetSnp) {
  const std::string ref_window = "AAAACCCCGGGGTTTT";
  std::string alt = ref_window;
  alt[8] = 'A';
  std::vector<std::string> haps = {ref_window, alt};
  // 20 reads: half support ref, half support alt.
  LikelihoodMatrix likelihoods;
  for (int i = 0; i < 20; ++i) {
    const bool alt_read = i % 2 == 0;
    likelihoods.push_back({alt_read ? -8.0 : -0.5, alt_read ? -0.5 : -8.0});
  }
  const auto calls = genotype_region(haps, likelihoods, 0, 1000);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].record.pos, 1008);
  EXPECT_EQ(calls[0].record.ref, "G");
  EXPECT_EQ(calls[0].record.alt, "A");
  EXPECT_EQ(calls[0].record.genotype, Genotype::kHet);
  EXPECT_GT(calls[0].record.qual, 10.0);
}

TEST(Genotyper, CallsHomAlt) {
  const std::string ref_window = "AAAACCCCGGGGTTTT";
  std::string alt = ref_window;
  alt[8] = 'A';
  std::vector<std::string> haps = {ref_window, alt};
  LikelihoodMatrix likelihoods;
  for (int i = 0; i < 20; ++i) likelihoods.push_back({-8.0, -0.5});
  const auto calls = genotype_region(haps, likelihoods, 0, 0);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].record.genotype, Genotype::kHomAlt);
}

TEST(Genotyper, HomRefEmitsNothing) {
  const std::string ref_window = "AAAACCCCGGGGTTTT";
  std::string alt = ref_window;
  alt[8] = 'A';
  std::vector<std::string> haps = {ref_window, alt};
  LikelihoodMatrix likelihoods;
  for (int i = 0; i < 20; ++i) likelihoods.push_back({-0.5, -9.0});
  EXPECT_TRUE(genotype_region(haps, likelihoods, 0, 0).empty());
}

TEST(Genotyper, IndelRepresentation) {
  const std::string ref_window = "AAAACCCCGGGGTTTTAAAA";
  // 3-base deletion of positions 8..11.
  const std::string alt = ref_window.substr(0, 8) + ref_window.substr(11);
  std::vector<std::string> haps = {ref_window, alt};
  LikelihoodMatrix likelihoods;
  for (int i = 0; i < 20; ++i) likelihoods.push_back({-8.0, -0.5});
  const auto calls = genotype_region(haps, likelihoods, 0, 100);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_TRUE(calls[0].record.is_deletion());
  EXPECT_EQ(calls[0].record.ref.size(), calls[0].record.alt.size() + 3);
}

// --- end-to-end ------------------------------------------------------------------

TEST(HaplotypeCallerE2E, RecoversPlantedVariants) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(200'000, 197));
  simdata::VariantSpec vspec;
  vspec.snp_rate = 0.0008;
  vspec.indel_rate = 0.00008;
  vspec.seed = 199;
  const auto truth = simdata::spawn_variants(ref, vspec);
  ASSERT_GT(truth.size(), 50u);
  const simdata::Donor donor(ref, truth);

  simdata::ReadSimSpec rspec;
  rspec.coverage = 30.0;
  rspec.duplicate_fraction = 0.0;
  rspec.seed = 211;
  const auto sample = simdata::simulate_reads(ref, donor, rspec);

  const align::FmIndex index(ref);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> records;
  records.reserve(sample.pairs.size() * 2);
  for (const auto& pair : sample.pairs) {
    auto [r1, r2] = aligner.align_pair(pair);
    if (!r1.is_unmapped()) records.push_back(std::move(r1));
    if (!r2.is_unmapped()) records.push_back(std::move(r2));
  }
  cleaner::coordinate_sort(records);

  CallStats stats;
  const auto calls = call_variants(records, ref, {}, &stats);
  EXPECT_GT(stats.regions, 10u);
  ASSERT_FALSE(calls.empty());

  // Recall on SNPs (indel representation can shift; measure separately
  // with positional slack).
  std::size_t snp_truth = 0, snp_hit = 0;
  for (const auto& t : truth) {
    if (!t.is_snp()) continue;
    ++snp_truth;
    for (const auto& c : calls) {
      if (c.contig_id == t.contig_id && c.pos == t.pos && c.ref == t.ref &&
          c.alt == t.alt) {
        ++snp_hit;
        break;
      }
    }
  }
  const double recall =
      static_cast<double>(snp_hit) / static_cast<double>(snp_truth);
  EXPECT_GT(recall, 0.80) << snp_hit << "/" << snp_truth;

  // Precision: most emitted SNP calls should be in the truth set.
  std::size_t call_snps = 0, call_correct = 0;
  for (const auto& c : calls) {
    if (!c.is_snp()) continue;
    ++call_snps;
    for (const auto& t : truth) {
      if (c.contig_id == t.contig_id && c.pos == t.pos && c.ref == t.ref &&
          c.alt == t.alt) {
        ++call_correct;
        break;
      }
    }
  }
  ASSERT_GT(call_snps, 0u);
  const double precision =
      static_cast<double>(call_correct) / static_cast<double>(call_snps);
  EXPECT_GT(precision, 0.80) << call_correct << "/" << call_snps;
}


// --- gVCF -----------------------------------------------------------------

TEST(Gvcf, BlocksCoverAlignedSpans) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(5'000, 251));
  std::vector<SamRecord> records = {read_at(ref, 100, 80),
                                    read_at(ref, 150, 80),
                                    read_at(ref, 400, 80)};
  const auto blocks = reference_blocks(records, {}, ref);
  ASSERT_FALSE(blocks.empty());
  // Coverage exists exactly over [100,230) and [400,480); no block may
  // extend beyond, and both spans must be covered.
  std::int64_t covered = 0;
  for (const auto& b : blocks) {
    EXPECT_GE(b.start, 100);
    EXPECT_LE(b.end, 480);
    EXPECT_TRUE(b.end <= 230 || b.start >= 400) << b.start << " " << b.end;
    EXPECT_GE(b.min_depth, 1);
    covered += b.end - b.start;
  }
  EXPECT_EQ(covered, 130 + 80);
}

TEST(Gvcf, VariantPositionsExcluded) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(2'000, 257));
  std::vector<SamRecord> records = {read_at(ref, 100, 100)};
  std::vector<VcfRecord> variants = {
      {0, 150, ".", "AC", "A", 50.0, Genotype::kHet}};
  const auto blocks = reference_blocks(records, variants, ref);
  for (const auto& b : blocks) {
    // The variant REF span [150,152) is never inside a block.
    EXPECT_TRUE(b.end <= 150 || b.start >= 152) << b.start << " " << b.end;
  }
  std::int64_t covered = 0;
  for (const auto& b : blocks) covered += b.end - b.start;
  EXPECT_EQ(covered, 100 - 2);
}

TEST(Gvcf, DepthChangesSplitBlocksByGqBand) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(2'000, 263));
  // Depth 1 over [100,180), depth ramps to 8 over [180,260):
  std::vector<SamRecord> records;
  records.push_back(read_at(ref, 100, 160));
  for (int i = 0; i < 7; ++i) records.push_back(read_at(ref, 180, 80));
  const auto blocks = reference_blocks(records, {}, ref);
  ASSERT_GE(blocks.size(), 2u);
  // First block: GQ band below 20 (depth 1 -> GQ 3); a later block has
  // banded GQ >= 20 (depth 8 -> GQ 24).
  EXPECT_LT(blocks.front().gq, 20);
  bool saw_high = false;
  for (const auto& b : blocks) {
    if (b.gq >= 20) saw_high = true;
  }
  EXPECT_TRUE(saw_high);
}

TEST(Gvcf, DuplicatesAndUnmappedIgnored) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(2'000, 269));
  auto dup = read_at(ref, 100, 80);
  dup.flag |= SamFlags::kDuplicate;
  SamRecord unmapped;
  unmapped.qname = "u";
  unmapped.flag = SamFlags::kUnmapped;
  const auto blocks =
      reference_blocks(std::vector<SamRecord>{dup, unmapped}, {}, ref);
  EXPECT_TRUE(blocks.empty());
}

TEST(Gvcf, WriteGvcfInterleavesSorted) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(2'000, 271));
  VcfHeader header;
  header.contigs = {{"chr1", 2'000}};
  std::vector<VcfRecord> variants = {
      {0, 150, ".", "A", "G", 60.0, Genotype::kHet}};
  std::vector<GvcfBlock> blocks = {{0, 100, 150, 5, 15},
                                   {0, 151, 200, 5, 15}};
  const std::string text = write_gvcf(header, variants, blocks, ref);
  const auto pos_block1 = text.find("END=150");
  const auto pos_variant = text.find("\t151\t.\tA\tG");
  const auto pos_block2 = text.find("END=200");
  ASSERT_NE(pos_block1, std::string::npos);
  ASSERT_NE(pos_variant, std::string::npos);
  ASSERT_NE(pos_block2, std::string::npos);
  EXPECT_LT(pos_block1, pos_variant);
  EXPECT_LT(pos_variant, pos_block2);
  EXPECT_NE(text.find("<NON_REF>"), std::string::npos);
}


TEST(HaplotypeCallerE2E, TargetIntervalsRestrictCalling) {
  const Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::single(60'000, 281));
  simdata::VariantSpec vspec;
  vspec.snp_rate = 0.001;
  vspec.indel_rate = 0.0;
  vspec.seed = 283;
  const auto truth = simdata::spawn_variants(ref, vspec);
  const simdata::Donor donor(ref, truth);
  simdata::ReadSimSpec rspec;
  rspec.coverage = 25.0;
  rspec.seed = 285;
  const auto sample = simdata::simulate_reads(ref, donor, rspec);

  const align::FmIndex index(ref);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> records;
  for (const auto& pair : sample.pairs) {
    auto [r1, r2] = aligner.align_pair(pair);
    if (!r1.is_unmapped()) records.push_back(std::move(r1));
    if (!r2.is_unmapped()) records.push_back(std::move(r2));
  }
  cleaner::coordinate_sort(records);

  const IntervalSet targets(
      std::vector<BedInterval>{{0, 10'000, 20'000, "panel"}});
  CallerOptions options;
  options.targets = &targets;
  const auto calls = call_variants(records, ref, options);
  ASSERT_FALSE(calls.empty());
  for (const auto& c : calls) {
    EXPECT_TRUE(targets.overlaps(c.contig_id, c.pos, c.pos + 1))
        << "off-target call at " << c.pos;
  }
  // Untargeted calling finds strictly more.
  const auto all_calls = call_variants(records, ref, {});
  EXPECT_GT(all_calls.size(), calls.size());
}

}  // namespace
}  // namespace gpf::caller
